package core

import (
	"strings"
	"testing"
	"time"

	"freerideg/internal/units"
)

// scaledProfile builds a profile whose components follow the model exactly
// for the given configuration changes.
func scaledProfile(n int, s units.Bytes, b units.Rate, td, tn, tc time.Duration) Profile {
	p := baseProfile()
	p.Config.DataNodes = n
	p.Config.ComputeNodes = 16
	p.Config.DatasetBytes = s
	p.Config.Bandwidth = b
	p.Tdisk, p.Tnetwork, p.Tcompute = td, tn, tc
	p.Tro, p.Tglobal = 0, 0
	return p
}

func TestCheckAssumptionsCleanWhenModelHolds(t *testing.T) {
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second)
	// 2x dataset: everything doubles. 2 storage nodes: t_d, t_n halve.
	bigger := scaledProfile(1, 200*units.MB, 100*units.MBPerSec, 20*time.Second, 10*time.Second, 200*time.Second)
	wider := scaledProfile(2, 100*units.MB, 100*units.MBPerSec, 5*time.Second, 2500*time.Millisecond, 100*time.Second)
	warnings, err := CheckAssumptions([]Profile{base, bigger, wider})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean profiles produced warnings: %v", warnings)
	}
}

func TestCheckAssumptionsFlagsNonLinearRetrieval(t *testing.T) {
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second)
	// 2x dataset but retrieval tripled: super-linear (thrashing).
	thrash := scaledProfile(1, 200*units.MB, 100*units.MBPerSec, 30*time.Second, 10*time.Second, 200*time.Second)
	warnings, err := CheckAssumptions([]Profile{base, thrash})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || warnings[0].Check != "retrieval-linearity" {
		t.Fatalf("warnings = %v, want one retrieval-linearity", warnings)
	}
	if !strings.Contains(warnings[0].String(), "t_d scaled") {
		t.Errorf("warning text uninformative: %s", warnings[0])
	}
}

func TestCheckAssumptionsFlagsNonScalingRepository(t *testing.T) {
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second)
	// 4 storage nodes but retrieval and network barely improve.
	stuck := scaledProfile(4, 100*units.MB, 100*units.MBPerSec, 9*time.Second, 4800*time.Millisecond, 100*time.Second)
	warnings, err := CheckAssumptions([]Profile{base, stuck})
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]bool{}
	for _, w := range warnings {
		checks[w.Check] = true
	}
	if !checks["storage-scaling"] || !checks["network-storage-scaling"] {
		t.Fatalf("warnings = %v, want storage-scaling and network-storage-scaling", warnings)
	}
	// The network warning points at the paper's own remedy.
	for _, w := range warnings {
		if w.Check == "network-storage-scaling" && !strings.Contains(w.Detail, "DropStorageScaling") {
			t.Errorf("network warning does not suggest DropStorageScaling: %s", w.Detail)
		}
	}
}

func TestCheckAssumptionsFlagsLatencyBoundPath(t *testing.T) {
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second)
	half := scaledProfile(1, 100*units.MB, 50*units.MBPerSec, 10*time.Second, 6*time.Second, 100*time.Second)
	warnings, err := CheckAssumptions([]Profile{base, half})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || warnings[0].Check != "bandwidth-scaling" {
		t.Fatalf("warnings = %v, want one bandwidth-scaling", warnings)
	}
}

func TestCheckAssumptionsDeduplicates(t *testing.T) {
	// Three sizes with the same super-linear retrieval defect: one
	// warning, not three.
	ps := []Profile{
		scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second),
		scaledProfile(1, 200*units.MB, 100*units.MBPerSec, 40*time.Second, 10*time.Second, 200*time.Second),
		scaledProfile(1, 400*units.MB, 100*units.MBPerSec, 160*time.Second, 20*time.Second, 400*time.Second),
	}
	warnings, err := CheckAssumptions(ps)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, w := range warnings {
		if w.Check == "retrieval-linearity" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d retrieval warnings, want 1 (deduplicated): %v", count, warnings)
	}
}

func TestCheckAssumptionsFlagsBrokenComputeScaling(t *testing.T) {
	// Same dataset/storage/bandwidth, 2x compute nodes, but the local
	// reduction barely speeds up: stragglers break linear speedup.
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 100*time.Second)
	base.Config.ComputeNodes = 8
	slow := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 10*time.Second, 5*time.Second, 90*time.Second)
	slow.Config.ComputeNodes = 16
	warnings, err := CheckAssumptions([]Profile{base, slow})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || warnings[0].Check != "compute-scaling" {
		t.Fatalf("warnings = %v, want one compute-scaling", warnings)
	}
	if !strings.Contains(warnings[0].Detail, "stragglers") {
		t.Errorf("warning does not explain the failure mode: %s", warnings[0])
	}
}

func TestCheckAssumptionsIgnoresZeroSignalComponents(t *testing.T) {
	// A zero-duration component carries no ratio signal and must not
	// produce division-by-zero warnings.
	base := scaledProfile(1, 100*units.MB, 100*units.MBPerSec, 0, 5*time.Second, 100*time.Second)
	bigger := scaledProfile(1, 200*units.MB, 100*units.MBPerSec, 0, 10*time.Second, 200*time.Second)
	warnings, err := CheckAssumptions([]Profile{base, bigger})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warnings {
		if w.Check == "retrieval-linearity" {
			t.Fatalf("zero t_d produced a retrieval warning: %v", w)
		}
	}
}

func TestCheckAssumptionsInputErrors(t *testing.T) {
	one := []Profile{baseProfile()}
	if _, err := CheckAssumptions(one); err == nil {
		t.Error("single profile accepted")
	}
	mixedApp := []Profile{baseProfile(), baseProfile()}
	mixedApp[1].App = "other"
	if _, err := CheckAssumptions(mixedApp); err == nil {
		t.Error("mixed apps accepted")
	}
	mixedCluster := []Profile{baseProfile(), baseProfile()}
	mixedCluster[1].Config.Cluster = "B"
	if _, err := CheckAssumptions(mixedCluster); err == nil {
		t.Error("mixed clusters accepted")
	}
	invalid := []Profile{baseProfile(), baseProfile()}
	invalid[1].Iterations = 0
	if _, err := CheckAssumptions(invalid); err == nil {
		t.Error("invalid profile accepted")
	}
}
