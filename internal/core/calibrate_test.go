package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"freerideg/internal/units"
)

func TestCalibrateLinkRecoversLine(t *testing.T) {
	const w = 2e-8 // 50 MB/s
	const l = 3 * time.Millisecond
	measure := func(b units.Bytes) (time.Duration, error) {
		return units.Seconds(w*float64(b)) + l, nil
	}
	cal, err := CalibrateLink(measure)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.W-w)/w > 1e-6 {
		t.Errorf("W = %g, want %g", cal.W, w)
	}
	if d := cal.L - l; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("L = %v, want %v", cal.L, l)
	}
	// And the calibration predicts a fresh size exactly.
	want, _ := measure(123 * units.KB)
	got := cal.MessageTime(123 * units.KB)
	if math.Abs(got.Seconds()-want.Seconds()) > 5e-9 {
		t.Errorf("MessageTime = %v, want %v", got, want)
	}
}

func TestCalibrateLinkErrors(t *testing.T) {
	if _, err := CalibrateLink(nil); err == nil {
		t.Error("nil measure accepted")
	}
	failing := func(units.Bytes) (time.Duration, error) { return 0, errors.New("down") }
	if _, err := CalibrateLink(failing); err == nil {
		t.Error("failing measure accepted")
	}
	negative := func(units.Bytes) (time.Duration, error) { return -time.Second, nil }
	if _, err := CalibrateLink(negative); err == nil {
		t.Error("negative measurement accepted")
	}
	one := func(b units.Bytes) (time.Duration, error) { return time.Second, nil }
	if _, err := CalibrateLink(one, units.KB); err == nil {
		t.Error("single probe size accepted")
	}
	// A decreasing cost line implies negative w.
	decreasing := func(b units.Bytes) (time.Duration, error) {
		return time.Duration(int64(time.Second) - int64(b)), nil
	}
	if _, err := CalibrateLink(decreasing, units.KB, units.MB); err == nil {
		t.Error("negative per-byte cost accepted")
	}
}

func TestCalibrateLinkClampsTinyNegativeLatency(t *testing.T) {
	// Pure bandwidth line: intercept ~0 may fit slightly negative.
	measure := func(b units.Bytes) (time.Duration, error) {
		return units.Seconds(1e-8 * float64(b)), nil
	}
	cal, err := CalibrateLink(measure)
	if err != nil {
		t.Fatal(err)
	}
	if cal.L < 0 {
		t.Fatalf("latency %v negative after clamp", cal.L)
	}
}

func twinProfiles(app string, factorD, factorN, factorC float64) (Profile, Profile) {
	a := baseProfile()
	a.App = app
	b := a
	b.Config.Cluster = "B"
	b.Tdisk = time.Duration(float64(a.Tdisk) * factorD)
	b.Tnetwork = time.Duration(float64(a.Tnetwork) * factorN)
	b.Tcompute = time.Duration(float64(a.Tcompute) * factorC)
	b.Tglobal = 0
	b.Tro = 0
	return a, b
}

func TestComputeScalingAveragesRatios(t *testing.T) {
	a1, b1 := twinProfiles("kmeans", 0.5, 0.4, 0.2)
	a2, b2 := twinProfiles("knn", 0.7, 0.6, 0.4)
	s, err := ComputeScaling([]Profile{a1, a2}, []Profile{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Disk-0.6) > 1e-9 || math.Abs(s.Network-0.5) > 1e-9 || math.Abs(s.Compute-0.3) > 1e-9 {
		t.Fatalf("scaling = %+v, want {0.6 0.5 0.3}", s)
	}
}

func TestComputeScalingErrors(t *testing.T) {
	if _, err := ComputeScaling(nil, nil); err == nil {
		t.Error("empty profile sets accepted")
	}
	a, b := twinProfiles("kmeans", 0.5, 0.5, 0.5)
	if _, err := ComputeScaling([]Profile{a}, nil); err == nil {
		t.Error("missing B profile accepted")
	}
	mismatched := b
	mismatched.Config.ComputeNodes = 4
	mismatched.Config.DataNodes = 4
	if _, err := ComputeScaling([]Profile{a}, []Profile{mismatched}); err == nil {
		t.Error("node-count mismatch accepted")
	}
	sizeMismatch := b
	sizeMismatch.Config.DatasetBytes *= 2
	if _, err := ComputeScaling([]Profile{a}, []Profile{sizeMismatch}); err == nil {
		t.Error("dataset-size mismatch accepted")
	}
	zeroA := a
	zeroA.Tdisk = 0
	if _, err := ComputeScaling([]Profile{zeroA}, []Profile{b}); err == nil {
		t.Error("zero-component A profile accepted")
	}
}
