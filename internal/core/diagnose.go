package core

import (
	"fmt"
	"math"
)

// Warning flags a model assumption that the given profiles contradict.
// The paper states its assumptions explicitly (retrieval linear in
// dataset size, repository throughput scaling with storage nodes,
// communication scaling with bandwidth); CheckAssumptions tests them
// against measured profiles so a deployment knows when the simple model
// stops being trustworthy.
type Warning struct {
	// Check names the assumption ("retrieval-linearity", ...).
	Check string
	// Detail explains the observed violation.
	Detail string
}

func (w Warning) String() string { return w.Check + ": " + w.Detail }

// assumptionTolerance is the relative deviation from the modeled scaling
// beyond which a warning is raised.
const assumptionTolerance = 0.20

// CheckAssumptions tests the prediction model's scaling assumptions
// against two or more profiles of the same application on the same
// cluster. It returns one warning per violated assumption (empty when
// everything scales as modeled) and an error when the profile set itself
// is unusable.
func CheckAssumptions(profiles []Profile) ([]Warning, error) {
	if len(profiles) < 2 {
		return nil, fmt.Errorf("core: assumption checks need at least two profiles")
	}
	app, cluster := profiles[0].App, profiles[0].Config.Cluster
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.App != app {
			return nil, fmt.Errorf("core: assumption checks mix apps %q and %q", app, p.App)
		}
		if p.Config.Cluster != cluster {
			return nil, fmt.Errorf("core: assumption checks mix clusters %q and %q", cluster, p.Config.Cluster)
		}
	}
	var out []Warning
	seen := map[string]bool{}
	add := func(check, detail string) {
		if !seen[check] {
			seen[check] = true
			out = append(out, Warning{Check: check, Detail: detail})
		}
	}
	for i := 0; i < len(profiles); i++ {
		for j := i + 1; j < len(profiles); j++ {
			a, b := profiles[i], profiles[j]
			ca, cb := a.Config, b.Config
			switch {
			// Same layout, different dataset size: t_d, t_n, t_c should all
			// be linear in s ("we are assuming that retrieval time is
			// linear to the size").
			case ca.DataNodes == cb.DataNodes && ca.ComputeNodes == cb.ComputeNodes &&
				ca.Bandwidth == cb.Bandwidth && ca.DatasetBytes != cb.DatasetBytes:
				want := float64(cb.DatasetBytes) / float64(ca.DatasetBytes)
				if dev := ratioDeviation(a.Tdisk.Seconds(), b.Tdisk.Seconds(), want); dev > assumptionTolerance {
					add("retrieval-linearity", fmt.Sprintf(
						"t_d scaled by %.2f when the dataset scaled by %.2f (%.0f%% off linear)",
						safeRatio(b.Tdisk.Seconds(), a.Tdisk.Seconds()), want, 100*dev))
				}
				if dev := ratioDeviation(a.Tnetwork.Seconds(), b.Tnetwork.Seconds(), want); dev > assumptionTolerance {
					add("network-linearity", fmt.Sprintf(
						"t_n scaled by %.2f when the dataset scaled by %.2f (%.0f%% off linear)",
						safeRatio(b.Tnetwork.Seconds(), a.Tnetwork.Seconds()), want, 100*dev))
				}
				if dev := ratioDeviation(a.Tcompute.Seconds(), b.Tcompute.Seconds(), want); dev > assumptionTolerance {
					add("compute-linearity", fmt.Sprintf(
						"t_c scaled by %.2f when the dataset scaled by %.2f (%.0f%% off linear)",
						safeRatio(b.Tcompute.Seconds(), a.Tcompute.Seconds()), want, 100*dev))
				}
			// Same size/bandwidth, different storage nodes: t_d and t_n
			// should scale with n ("we are assuming that the throughput
			// increases as the number of storage nodes increases").
			case ca.DatasetBytes == cb.DatasetBytes && ca.Bandwidth == cb.Bandwidth &&
				ca.DataNodes != cb.DataNodes:
				want := float64(ca.DataNodes) / float64(cb.DataNodes)
				if dev := ratioDeviation(a.Tdisk.Seconds(), b.Tdisk.Seconds(), want); dev > assumptionTolerance {
					add("storage-scaling", fmt.Sprintf(
						"t_d scaled by %.2f from %d to %d storage nodes, want %.2f — "+
							"repository throughput is not scaling; consider more conservative resource choices",
						safeRatio(b.Tdisk.Seconds(), a.Tdisk.Seconds()), ca.DataNodes, cb.DataNodes, want))
				}
				if dev := ratioDeviation(a.Tnetwork.Seconds(), b.Tnetwork.Seconds(), want); dev > assumptionTolerance {
					add("network-storage-scaling", fmt.Sprintf(
						"t_n scaled by %.2f from %d to %d storage nodes, want %.2f — "+
							"set Predictor.DropStorageScaling for this environment",
						safeRatio(b.Tnetwork.Seconds(), a.Tnetwork.Seconds()), ca.DataNodes, cb.DataNodes, want))
				}
			// Same size/storage/bandwidth, different compute nodes: the
			// parallelizable part of t_c should scale with c.
			case ca.DatasetBytes == cb.DatasetBytes && ca.Bandwidth == cb.Bandwidth &&
				ca.DataNodes == cb.DataNodes && ca.ComputeNodes != cb.ComputeNodes:
				want := float64(ca.ComputeNodes) / float64(cb.ComputeNodes)
				la := (a.Tcompute - a.Tro - a.Tglobal).Seconds()
				lb := (b.Tcompute - b.Tro - b.Tglobal).Seconds()
				if dev := ratioDeviation(la, lb, want); dev > assumptionTolerance {
					add("compute-scaling", fmt.Sprintf(
						"local reduction scaled by %.2f from %d to %d compute nodes, want %.2f — "+
							"load imbalance or stragglers break the linear-speedup assumption",
						safeRatio(lb, la), ca.ComputeNodes, cb.ComputeNodes, want))
				}
			// Same layout/size, different bandwidth: t_n should scale
			// inversely with b.
			case ca.DataNodes == cb.DataNodes && ca.ComputeNodes == cb.ComputeNodes &&
				ca.DatasetBytes == cb.DatasetBytes && ca.Bandwidth != cb.Bandwidth:
				want := float64(ca.Bandwidth) / float64(cb.Bandwidth)
				if dev := ratioDeviation(a.Tnetwork.Seconds(), b.Tnetwork.Seconds(), want); dev > assumptionTolerance {
					add("bandwidth-scaling", fmt.Sprintf(
						"t_n scaled by %.2f when bandwidth changed by %.2fx, want %.2f — "+
							"the path may be latency-bound or shared",
						safeRatio(b.Tnetwork.Seconds(), a.Tnetwork.Seconds()), 1/want, want))
				}
			}
		}
	}
	return out, nil
}

// ratioDeviation reports |observed/want − 1| for the ratio b/a, or 0 when
// a carries no signal.
func ratioDeviation(a, b, want float64) float64 {
	if a <= 0 || want <= 0 {
		return 0
	}
	return math.Abs(b/a/want - 1)
}

func safeRatio(b, a float64) float64 {
	if a == 0 {
		return math.Inf(1)
	}
	return b / a
}
