package core

import (
	"errors"
	"fmt"
	"math"
)

// inferTolerance is the maximum relative mismatch accepted when deciding
// which scaling class a pair of profiles follows.
const inferTolerance = 0.25

// discriminability is the minimum separation between the two classes'
// expected ratios for a profile pair to be informative.
const discriminability = 0.10

// InferROClass determines an application's reduction-object size class
// from two or more profile runs with different dataset sizes and/or
// compute-node counts (Section 3.3.1: "by looking at reduction object
// size from two or more profile runs ... we can obtain this information").
func InferROClass(profiles []Profile) (ROSizeClass, error) {
	pairs, err := informativePairs(profiles)
	if err != nil {
		return 0, err
	}
	votesConst, votesLinear := 0, 0
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		observed := float64(b.ROBytesPerNode) / float64(a.ROBytesPerNode)
		expectConst := 1.0
		expectLinear := (float64(b.Config.DatasetBytes) / float64(a.Config.DatasetBytes)) *
			(float64(a.Config.ComputeNodes) / float64(b.Config.ComputeNodes))
		if relDiff(expectConst, expectLinear) < discriminability {
			continue // this pair cannot tell the classes apart
		}
		dc := relDiff(observed, expectConst)
		dl := relDiff(observed, expectLinear)
		switch {
		case dc < dl && dc < inferTolerance:
			votesConst++
		case dl < dc && dl < inferTolerance:
			votesLinear++
		}
	}
	return pickClass(votesConst, votesLinear, "reduction object size")
}

// InferGlobalClass determines an application's global-reduction time class
// from two or more profile runs (Section 3.3.2).
func InferGlobalClass(profiles []Profile) (GlobalClass, error) {
	pairs, err := informativePairs(profiles)
	if err != nil {
		return 0, err
	}
	votesLC, votesCL := 0, 0
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a.Tglobal <= 0 {
			continue
		}
		observed := b.Tglobal.Seconds() / a.Tglobal.Seconds()
		expectLC := float64(b.Config.ComputeNodes) / float64(a.Config.ComputeNodes)
		expectCL := float64(b.Config.DatasetBytes) / float64(a.Config.DatasetBytes)
		if relDiff(expectLC, expectCL) < discriminability {
			continue
		}
		dlc := relDiff(observed, expectLC)
		dcl := relDiff(observed, expectCL)
		switch {
		case dlc < dcl && dlc < inferTolerance:
			votesLC++
		case dcl < dlc && dcl < inferTolerance:
			votesCL++
		}
	}
	cls, err := pickClass(votesLC, votesCL, "global reduction time")
	return GlobalClass(cls), err
}

// InferModel infers both scaling classes at once.
func InferModel(profiles []Profile) (AppModel, error) {
	ro, err := InferROClass(profiles)
	if err != nil {
		return AppModel{}, err
	}
	g, err := InferGlobalClass(profiles)
	if err != nil {
		return AppModel{}, err
	}
	return AppModel{RO: ro, Global: GlobalClass(g)}, nil
}

// informativePairs validates the profile set and returns all ordered
// pairs whose configurations differ in dataset size or compute nodes.
func informativePairs(profiles []Profile) ([][2]Profile, error) {
	if len(profiles) < 2 {
		return nil, errors.New("core: class inference needs at least two profiles")
	}
	app := profiles[0].App
	for _, p := range profiles {
		if p.App != app {
			return nil, fmt.Errorf("core: class inference mixes apps %q and %q", app, p.App)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	var pairs [][2]Profile
	for i := 0; i < len(profiles); i++ {
		for j := i + 1; j < len(profiles); j++ {
			a, b := profiles[i], profiles[j]
			if a.Config.DatasetBytes != b.Config.DatasetBytes ||
				a.Config.ComputeNodes != b.Config.ComputeNodes {
				pairs = append(pairs, [2]Profile{a, b})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, errors.New("core: profiles do not vary dataset size or compute nodes")
	}
	return pairs, nil
}

func pickClass(votesA, votesB int, what string) (ROSizeClass, error) {
	switch {
	case votesA > votesB:
		return ROSizeClass(0), nil
	case votesB > votesA:
		return ROSizeClass(1), nil
	default:
		return 0, fmt.Errorf("core: %s class is ambiguous from the given profiles (%d vs %d votes)",
			what, votesA, votesB)
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
