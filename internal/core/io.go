package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ProfileStore is the JSON document exchanged between profiling runs and
// prediction sessions: a set of profiles plus the calibrations and scaling
// factors needed to use them.
type ProfileStore struct {
	Profiles []Profile                  `json:"profiles"`
	Links    map[string]LinkCalibration `json:"links,omitempty"`
	Scalings map[string]Scaling         `json:"scalings,omitempty"`
}

// Validate checks every profile in the store. An application may appear
// at most once: Find returns the first match, so a duplicate entry would
// silently shadow the later one.
func (s ProfileStore) Validate() error {
	if len(s.Profiles) == 0 {
		return fmt.Errorf("core: profile store is empty")
	}
	seen := make(map[string]int, len(s.Profiles))
	for i, p := range s.Profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: profile %d: %w", i, err)
		}
		if j, dup := seen[p.App]; dup {
			return fmt.Errorf("core: profiles %d and %d both describe %q", j, i, p.App)
		}
		seen[p.App] = i
	}
	return nil
}

// Find returns the store's profile for an application, preferring the
// first match.
func (s ProfileStore) Find(app string) (Profile, bool) {
	for _, p := range s.Profiles {
		if p.App == app {
			return p, true
		}
	}
	return Profile{}, false
}

// WriteStore writes a profile store as indented JSON.
func WriteStore(w io.Writer, s ProfileStore) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadStore parses and validates a profile store.
func ReadStore(r io.Reader) (ProfileStore, error) {
	var s ProfileStore
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return ProfileStore{}, fmt.Errorf("core: decoding profile store: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ProfileStore{}, err
	}
	return s, nil
}

// SaveStore writes a profile store to a file.
func SaveStore(path string, s ProfileStore) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteStore(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadStore reads a profile store from a file.
func LoadStore(path string) (ProfileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return ProfileStore{}, err
	}
	defer f.Close()
	return ReadStore(f)
}

// NewPredictorFromStore builds a predictor for one application from a
// store, wiring in its calibrations and scaling factors.
func NewPredictorFromStore(s ProfileStore, app string, m AppModel) (*Predictor, error) {
	p, ok := s.Find(app)
	if !ok {
		return nil, fmt.Errorf("core: store has no profile for %q", app)
	}
	pred, err := NewPredictor(p, m)
	if err != nil {
		return nil, err
	}
	for k, v := range s.Links {
		pred.Links[k] = v
	}
	for k, v := range s.Scalings {
		pred.Scalings[k] = v
	}
	return pred, nil
}
