package core

import (
	"encoding/json"
	"testing"
	"time"

	"freerideg/internal/units"
)

func TestPredictSplitsCachedRetrieval(t *testing.T) {
	prof := baseProfile()
	prof.Tdisk = 30 * time.Second
	prof.TdiskCached = 20 * time.Second // 10s first pass, 20s cached re-reads
	pr, err := NewPredictor(prof, AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 data nodes, 4 compute nodes, same dataset: first-pass retrieval
	// scales with n (10/2 = 5s), cached re-reads with c (20/4 = 5s).
	cfg := Config{
		Cluster: "A", DataNodes: 2, ComputeNodes: 4,
		Bandwidth: 100 * units.MBPerSec, DatasetBytes: 100 * units.MB,
	}
	p, err := pr.Predict(cfg, NoComm)
	if err != nil {
		t.Fatal(err)
	}
	durClose(t, "Tdisk", p.Tdisk, 10*time.Second)

	// Without the split (TdiskCached = 0) the paper's formula would keep
	// the whole 30s scaled only by n: 15s.
	plain := prof
	plain.TdiskCached = 0
	pr2, err := NewPredictor(plain, AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pr2.Predict(cfg, NoComm)
	if err != nil {
		t.Fatal(err)
	}
	durClose(t, "Tdisk (memory-cached profile)", p2.Tdisk, 15*time.Second)
}

func TestProfileValidateCachedBounds(t *testing.T) {
	p := baseProfile()
	p.TdiskCached = p.Tdisk
	if err := p.Validate(); err != nil {
		t.Fatalf("cached == Tdisk rejected: %v", err)
	}
	p.TdiskCached = p.Tdisk + 1
	if err := p.Validate(); err == nil {
		t.Fatal("cached > Tdisk accepted")
	}
	p.TdiskCached = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative cached accepted")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := baseProfile()
	p.TdiskCached = 2 * time.Second
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed profile:\n got %+v\nwant %+v", back, p)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionJSONRoundTrip(t *testing.T) {
	pr := mustPredictor(t, AppModel{})
	cfg := baseProfile().Config
	cfg.ComputeNodes = 4
	p, err := pr.Predict(cfg, GlobalReduction)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Prediction
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed prediction:\n got %+v\nwant %+v", back, p)
	}
}

func TestScalingAndCalibrationJSONRoundTrip(t *testing.T) {
	s := Scaling{Disk: 0.4, Network: 0.9, Compute: 0.28}
	data, _ := json.Marshal(s)
	var sBack Scaling
	if err := json.Unmarshal(data, &sBack); err != nil || sBack != s {
		t.Fatalf("scaling round trip: %+v, %v", sBack, err)
	}
	c := LinkCalibration{W: 1e-8, L: 12 * time.Millisecond}
	data, _ = json.Marshal(c)
	var cBack LinkCalibration
	if err := json.Unmarshal(data, &cBack); err != nil || cBack != c {
		t.Fatalf("calibration round trip: %+v, %v", cBack, err)
	}
}
