package core

import (
	"errors"
	"fmt"
	"time"

	"freerideg/internal/stats"
	"freerideg/internal/units"
)

// DefaultCalibrationSizes are the message sizes CalibrateLink probes.
var DefaultCalibrationSizes = []units.Bytes{
	4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB, units.MB,
}

// CalibrateLink experimentally determines the w (per-byte cost) and l
// (latency) parameters of an interconnect by measuring the given message
// sizes and fitting a line, exactly as the paper prescribes for T_ro =
// w*r + l. The measure function sends one message of the given size and
// reports the elapsed time; it may be backed by a real network or the
// simulated one.
func CalibrateLink(measure func(units.Bytes) (time.Duration, error), sizes ...units.Bytes) (LinkCalibration, error) {
	if measure == nil {
		return LinkCalibration{}, errors.New("core: nil measure function")
	}
	if len(sizes) == 0 {
		sizes = DefaultCalibrationSizes
	}
	if len(sizes) < 2 {
		return LinkCalibration{}, errors.New("core: need at least two probe sizes")
	}
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, sz := range sizes {
		d, err := measure(sz)
		if err != nil {
			return LinkCalibration{}, fmt.Errorf("core: calibration probe %v: %w", sz, err)
		}
		if d < 0 {
			return LinkCalibration{}, fmt.Errorf("core: calibration probe %v measured negative time %v", sz, d)
		}
		xs[i] = float64(sz)
		ys[i] = d.Seconds()
	}
	w, l, err := stats.LinFit(xs, ys)
	if err != nil {
		return LinkCalibration{}, fmt.Errorf("core: calibration fit: %w", err)
	}
	if w < 0 {
		return LinkCalibration{}, fmt.Errorf("core: calibration produced negative per-byte cost %g", w)
	}
	if l < 0 {
		// Tiny negative intercepts can arise from fit noise; clamp.
		l = 0
	}
	return LinkCalibration{W: w, L: units.Seconds(l)}, nil
}

// ComputeScaling derives the component scaling factors between two
// clusters from representative application profiles taken on *identical*
// configurations (same node counts, bandwidth, and dataset size) on both
// (Section 3.4):
//
//	s_d = mean_i( T_disk,i,B / T_disk,i,A )   and likewise s_n, s_c.
//
// Profiles are matched by application name; every A profile must have a
// B counterpart.
func ComputeScaling(onA, onB []Profile) (Scaling, error) {
	if len(onA) == 0 {
		return Scaling{}, errors.New("core: no representative profiles")
	}
	byApp := make(map[string]Profile, len(onB))
	for _, p := range onB {
		byApp[p.App] = p
	}
	var ds, ns, cs []float64
	for _, a := range onA {
		b, ok := byApp[a.App]
		if !ok {
			return Scaling{}, fmt.Errorf("core: no cluster-B profile for %q", a.App)
		}
		if err := sameConfigShape(a.Config, b.Config); err != nil {
			return Scaling{}, fmt.Errorf("core: %q: %w", a.App, err)
		}
		if a.Tdisk <= 0 || a.Tnetwork <= 0 || a.Tcompute <= 0 {
			return Scaling{}, fmt.Errorf("core: %q: cluster-A profile has zero components", a.App)
		}
		ds = append(ds, b.Tdisk.Seconds()/a.Tdisk.Seconds())
		ns = append(ns, b.Tnetwork.Seconds()/a.Tnetwork.Seconds())
		cs = append(cs, b.Tcompute.Seconds()/a.Tcompute.Seconds())
	}
	return Scaling{
		Disk:    stats.Mean(ds),
		Network: stats.Mean(ns),
		Compute: stats.Mean(cs),
	}, nil
}

// sameConfigShape checks that two configs agree in everything but the
// cluster, the precondition for computing scaling factors.
func sameConfigShape(a, b Config) error {
	if a.DataNodes != b.DataNodes || a.ComputeNodes != b.ComputeNodes {
		return fmt.Errorf("node counts differ: %d-%d vs %d-%d",
			a.DataNodes, a.ComputeNodes, b.DataNodes, b.ComputeNodes)
	}
	if a.DatasetBytes != b.DatasetBytes {
		return fmt.Errorf("dataset sizes differ: %v vs %v", a.DatasetBytes, b.DatasetBytes)
	}
	return nil
}
