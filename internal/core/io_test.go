package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleStore() ProfileStore {
	return ProfileStore{
		Profiles: []Profile{baseProfile()},
		Links: map[string]LinkCalibration{
			"A": {W: 1e-8, L: 12 * time.Millisecond},
		},
		Scalings: map[string]Scaling{
			"B": {Disk: 0.4, Network: 0.9, Compute: 0.3},
		},
	}
}

func TestStoreWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStore(&buf, sampleStore()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Profiles) != 1 || back.Profiles[0] != sampleStore().Profiles[0] {
		t.Fatalf("profiles changed: %+v", back.Profiles)
	}
	if back.Links["A"].L != 12*time.Millisecond {
		t.Fatalf("links changed: %+v", back.Links)
	}
	if back.Scalings["B"].Compute != 0.3 {
		t.Fatalf("scalings changed: %+v", back.Scalings)
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	if err := SaveStore(path, sampleStore()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Find("toy"); !ok {
		t.Fatal("saved profile not found after load")
	}
	if _, ok := back.Find("nope"); ok {
		t.Fatal("Find matched a missing app")
	}
}

func TestStoreValidation(t *testing.T) {
	if err := WriteStore(&bytes.Buffer{}, ProfileStore{}); err == nil {
		t.Error("empty store written")
	}
	bad := sampleStore()
	bad.Profiles[0].Iterations = 0
	if err := WriteStore(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid profile written")
	}
	if _, err := ReadStore(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON read")
	}
	if _, err := ReadStore(strings.NewReader(`{"profiles":[]}`)); err == nil {
		t.Error("empty profile list read")
	}
	if _, err := LoadStore(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestStoreValidateRejectsDuplicateApps(t *testing.T) {
	dup := sampleStore()
	second := dup.Profiles[0]
	second.Tdisk *= 2
	dup.Profiles = append(dup.Profiles, second)
	err := dup.Validate()
	if err == nil {
		t.Fatal("duplicate app entries validated")
	}
	if !strings.Contains(err.Error(), `"toy"`) {
		t.Errorf("error does not name the duplicated app: %v", err)
	}
	if err := WriteStore(&bytes.Buffer{}, dup); err == nil {
		t.Error("duplicate app entries written")
	}
	// Distinct apps stay valid.
	ok := sampleStore()
	other := ok.Profiles[0]
	other.App = "other"
	ok.Profiles = append(ok.Profiles, other)
	if err := ok.Validate(); err != nil {
		t.Fatalf("distinct apps rejected: %v", err)
	}
}

// TestReadStoreIgnoresUnknownKeys pins the compatibility contract the
// versioned profile store relies on: its Document format is a
// ProfileStore plus extra version keys, and plain core readers must
// load it.
func TestReadStoreIgnoresUnknownKeys(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStore(&buf, sampleStore()); err != nil {
		t.Fatal(err)
	}
	doc := strings.TrimSpace(buf.String())
	doc = doc[:len(doc)-1] + `,"version":7,"appVersions":{"toy":3}}`
	back, err := ReadStore(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Find("toy"); !ok {
		t.Fatal("profile lost when extra keys present")
	}
}

func TestSaveStoreBadPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "profiles.json")
	if err := SaveStore(bad, sampleStore()); err == nil {
		t.Error("save into a missing directory succeeded")
	}
}

func TestNewPredictorFromStoreRejectsInvalidProfile(t *testing.T) {
	s := sampleStore()
	s.Profiles[0].Iterations = 0
	if _, err := NewPredictorFromStore(s, "toy", AppModel{}); err == nil {
		t.Error("predictor built from an invalid profile")
	}
}

func TestNewPredictorFromStore(t *testing.T) {
	s := sampleStore()
	pred, err := NewPredictorFromStore(s, "toy", AppModel{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pred.Links["A"]; !ok {
		t.Error("link calibration not wired")
	}
	if _, ok := pred.Scalings["B"]; !ok {
		t.Error("scaling factors not wired")
	}
	// Cross-cluster prediction works straight from the store.
	cfg := s.Profiles[0].Config
	cfg.Cluster = "B"
	if _, err := pred.Predict(cfg, GlobalReduction); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPredictorFromStore(s, "missing", AppModel{}); err == nil {
		t.Error("missing app predictor built")
	}
}
