package core

import (
	"testing"
	"time"

	"freerideg/internal/units"
)

// profileWith builds a profile with the given compute nodes, dataset size,
// per-node RO bytes and global reduction time.
func profileWith(c int, s units.Bytes, ro units.Bytes, tg time.Duration) Profile {
	p := baseProfile()
	p.Config.ComputeNodes = c
	p.Config.DatasetBytes = s
	p.ROBytesPerNode = ro
	p.Tglobal = tg
	return p
}

func TestInferROClassConstant(t *testing.T) {
	// Same RO size despite 4x nodes at fixed dataset size: constant.
	// (A pair that scaled dataset and nodes together would be skipped as
	// indiscriminable — see TestInferROClassAmbiguousPair.)
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(4, 100*units.MB, 10*units.KB, 4*time.Second),
	}
	got, err := InferROClass(ps)
	if err != nil {
		t.Fatal(err)
	}
	if got != ROConstant {
		t.Fatalf("InferROClass = %v, want constant", got)
	}
}

func TestInferROClassLinear(t *testing.T) {
	// 4x dataset on the same node count: per-node RO grows 4x.
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(1, 400*units.MB, 40*units.KB, 4*time.Second),
	}
	got, err := InferROClass(ps)
	if err != nil {
		t.Fatal(err)
	}
	if got != ROLinear {
		t.Fatalf("InferROClass = %v, want linear", got)
	}
}

func TestInferROClassAmbiguousPair(t *testing.T) {
	// 2x dataset AND 2x nodes leaves the linear per-node size unchanged —
	// the pair cannot discriminate, so inference must fail rather than
	// guess.
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(2, 200*units.MB, 10*units.KB, time.Second),
	}
	if _, err := InferROClass(ps); err == nil {
		t.Fatal("indiscriminable pair did not error")
	}
}

func TestInferGlobalClassLinearConstant(t *testing.T) {
	// Tg quadruples with 4x nodes at fixed dataset size.
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(4, 100*units.MB, 10*units.KB, 4*time.Second),
	}
	got, err := InferGlobalClass(ps)
	if err != nil {
		t.Fatal(err)
	}
	if got != GlobalLinearConstant {
		t.Fatalf("InferGlobalClass = %v, want linear-constant", got)
	}
}

func TestInferGlobalClassConstantLinear(t *testing.T) {
	// Tg doubles with 2x dataset at fixed nodes... and stays put with 4x
	// nodes.
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(1, 200*units.MB, 20*units.KB, 2*time.Second),
		profileWith(4, 100*units.MB, 3*units.KB, time.Second),
	}
	got, err := InferGlobalClass(ps)
	if err != nil {
		t.Fatal(err)
	}
	if got != GlobalConstantLinear {
		t.Fatalf("InferGlobalClass = %v, want constant-linear", got)
	}
}

func TestInferModelCombined(t *testing.T) {
	ps := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(4, 100*units.MB, 2560, 4*time.Second), // RO/4, Tg*4
	}
	m, err := InferModel(ps)
	if err != nil {
		t.Fatal(err)
	}
	if m.RO != ROLinear || m.Global != GlobalLinearConstant {
		t.Fatalf("InferModel = %+v", m)
	}
}

func TestInferErrors(t *testing.T) {
	one := []Profile{profileWith(1, 100*units.MB, 10*units.KB, time.Second)}
	if _, err := InferROClass(one); err == nil {
		t.Error("single profile accepted")
	}
	mixed := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(2, 100*units.MB, 10*units.KB, time.Second),
	}
	mixed[1].App = "other"
	if _, err := InferROClass(mixed); err == nil {
		t.Error("mixed-app profiles accepted")
	}
	identical := []Profile{
		profileWith(2, 100*units.MB, 10*units.KB, time.Second),
		profileWith(2, 100*units.MB, 10*units.KB, time.Second),
	}
	if _, err := InferROClass(identical); err == nil {
		t.Error("identical configs accepted")
	}
	invalid := []Profile{
		profileWith(1, 100*units.MB, 10*units.KB, time.Second),
		profileWith(2, 100*units.MB, 10*units.KB, time.Second),
	}
	invalid[1].Iterations = 0
	if _, err := InferROClass(invalid); err == nil {
		t.Error("invalid profile accepted")
	}
}
