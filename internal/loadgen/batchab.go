package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"freerideg/internal/fgservice"
)

// BatchABSide is one endpoint's batch-vs-sequential measurement: the
// wall time of n sequential singular requests against one n-item batch
// request, both on a fresh server with a cold cache. Times are the
// minimum over the A/B's iterations — the standard way to strip
// scheduler noise from a deterministic workload.
type BatchABSide struct {
	SequentialMs float64 `json:"sequentialMs"`
	BatchMs      float64 `json:"batchMs"`
	Speedup      float64 `json:"speedup"`
	ItemErrors   int     `json:"itemErrors"`
}

// BatchAB is the batch-amortization A/B report fgload embeds in
// BENCH_serve.json.
type BatchAB struct {
	Items      int         `json:"items"`
	Iterations int         `json:"iterations"`
	Seed       int64       `json:"seed"`
	Predict    BatchABSide `json:"predict"`
	Select     BatchABSide `json:"select"`
}

// batchABIterations balances noise-stripping against harness runtime.
const batchABIterations = 5

// RunBatchAB measures what the batch plane amortizes: n seeded requests
// issued as n sequential singular calls versus one n-item batch call.
// newTarget must yield a fresh server per call — every measurement side
// starts with a cold response cache, so the comparison isolates
// per-request overhead (connection handling, HTTP dispatch,
// decode/encode, snapshot resolution) rather than cache warmth: both
// sides compute and fill the same entries in the same order. The
// returned cleanup (may be nil) tears the server down after the side's
// measurement; fgload passes a target backed by a real loopback
// listener so the per-request transport cost the batch plane exists to
// amortize is part of what is timed.
func RunBatchAB(newTarget func() (Target, func(), error), opts Options, n int) (BatchAB, error) {
	opts = opts.withDefaults()
	if n < 1 {
		return BatchAB{}, fmt.Errorf("loadgen: batch A/B needs >= 1 items, got %d", n)
	}
	// The item streams reuse the workload generators, so the A/B sees
	// the duplicate-heavy request vocabulary a real mix produces.
	rng := rand.New(rand.NewSource(opts.Seed))
	sizes := sizeStrings(opts.BaseBytes)
	predictItems := make([]op, n)
	preq := fgservice.PredictBatchRequest{Items: make([]fgservice.PredictRequest, n)}
	for i := 0; i < n; i++ {
		preq.Items[i] = predictReq(rng, opts, sizes)
		predictItems[i] = marshalOp("/predict", preq.Items[i])
	}
	predictBatch := marshalOp("/predict/batch", preq)

	selectItems := make([]op, n)
	sreq := fgservice.SelectBatchRequest{Items: make([]fgservice.SelectRequest, n)}
	for i := 0; i < n; i++ {
		sreq.Items[i] = selectReq(rng, opts, sizes)
		selectItems[i] = marshalOp("/select", sreq.Items[i])
	}
	selectBatch := marshalOp("/select/batch", sreq)

	ab := BatchAB{Items: n, Iterations: batchABIterations, Seed: opts.Seed}
	var err error
	if ab.Predict, err = runBatchABSide(newTarget, opts, predictItems, predictBatch); err != nil {
		return BatchAB{}, fmt.Errorf("loadgen: predict batch A/B: %w", err)
	}
	if ab.Select, err = runBatchABSide(newTarget, opts, selectItems, selectBatch); err != nil {
		return BatchAB{}, fmt.Errorf("loadgen: select batch A/B: %w", err)
	}
	return ab, nil
}

func runBatchABSide(newTarget func() (Target, func(), error), opts Options, items []op, batch op) (BatchABSide, error) {
	side := BatchABSide{SequentialMs: -1, BatchMs: -1}
	for iter := 0; iter < batchABIterations; iter++ {
		// Sequential side: n singular requests on a fresh server.
		err := withWarmTarget(newTarget, opts, func(tgt Target) error {
			start := time.Now()
			for _, it := range items {
				status, body, err := post(tgt, it.path, it.body)
				if err != nil {
					return err
				}
				if status != http.StatusOK {
					return fmt.Errorf("%s: status %d: %s", it.path, status, body)
				}
			}
			if ms := time.Since(start).Seconds() * 1e3; side.SequentialMs < 0 || ms < side.SequentialMs {
				side.SequentialMs = ms
			}
			return nil
		})
		if err != nil {
			return side, err
		}

		// Batch side: one request with the same items on a fresh server.
		err = withWarmTarget(newTarget, opts, func(tgt Target) error {
			start := time.Now()
			status, body, err := post(tgt, batch.path, batch.body)
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("%s: status %d: %s", batch.path, status, body)
			}
			if ms := time.Since(start).Seconds() * 1e3; side.BatchMs < 0 || ms < side.BatchMs {
				side.BatchMs = ms
			}
			var bv batchView
			if err := json.Unmarshal(body, &bv); err != nil {
				return fmt.Errorf("%s: parsing batch response: %w", batch.path, err)
			}
			if len(bv.Items) != len(items) {
				return fmt.Errorf("%s: %d items answered, want %d", batch.path, len(bv.Items), len(items))
			}
			for _, item := range bv.Items {
				if item.Error != nil {
					side.ItemErrors++
				}
			}
			return nil
		})
		if err != nil {
			return side, err
		}
	}
	if side.BatchMs > 0 {
		side.Speedup = side.SequentialMs / side.BatchMs
	}
	return side, nil
}

// withWarmTarget builds a fresh target, runs the uncounted warmup
// predict (so neither side's measurement includes the one-off
// self-profiling simulation), invokes fn, and tears the target down.
func withWarmTarget(newTarget func() (Target, func(), error), opts Options, fn func(Target) error) error {
	tgt, cleanup, err := newTarget()
	if err != nil {
		return err
	}
	if cleanup != nil {
		defer cleanup()
	}
	warm := marshalOp("/predict", predictWarmup(opts))
	status, body, err := post(tgt, warm.path, warm.body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("warmup predict: status %d: %s", status, body)
	}
	return fn(tgt)
}
