package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Target issues one HTTP request against the service under test and
// returns the status code and response body. The two implementations
// differ only in transport: in-process dispatch straight into an
// http.Handler (no sockets, so latency measures the serve path itself)
// or a real client against a remote base URL. ctx bounds the whole
// exchange; a context that ends mid-request surfaces as the transport
// error both implementations' callers classify.
type Target interface {
	Do(ctx context.Context, method, path string, body []byte) (status int, respBody []byte, err error)
}

// NewHandlerTarget wraps an http.Handler — typically
// fgservice.Server.Handler() — as an in-process target. Requests never
// touch the network, so recorded latencies isolate handler cost
// (prediction arithmetic, ranking, cache lookups) from transport noise.
// A ctx deadline reaches the handler as the request context, exactly as
// a closing client connection would: the serve plane answers its own
// timeout/cancel envelope rather than the client timing out first.
func NewHandlerTarget(h http.Handler) Target { return &handlerTarget{h: h} }

type handlerTarget struct{ h http.Handler }

func (t *handlerTarget) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, "http://in-process"+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := &responseRecorder{header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return rec.status(), rec.body.Bytes(), nil
}

// responseRecorder is the minimal in-memory http.ResponseWriter the
// in-process target serves into. (net/http/httptest's recorder would
// do, but importing httptest from non-test code drags test-server
// machinery into every binary linking this package.)
type responseRecorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

func (r *responseRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// NewHTTPTarget builds a target for a running service at baseURL (e.g.
// "http://localhost:8080"). A nil client selects a default with a 60s
// per-request timeout.
func NewHTTPTarget(baseURL string, client *http.Client) Target {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &httpTarget{base: strings.TrimRight(baseURL, "/"), client: client}
}

type httpTarget struct {
	base   string
	client *http.Client
}

// maxResponseBody bounds how much of a response the harness buffers; a
// full /select ranking is a few kilobytes, so 4MB is pure safety slack.
const maxResponseBody = 4 << 20

func (t *httpTarget) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return resp.StatusCode, nil, fmt.Errorf("reading %s %s response: %w", method, path, err)
	}
	return resp.StatusCode, b, nil
}
