package loadgen

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// finite reports whether v is a usable number for a report field.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkOrdered pins the quantile ordering contract on one summary:
// every latency field is finite and P50 <= P95 <= P99 <= Max.
func checkOrdered(t *testing.T, st LatencyStats) {
	t.Helper()
	for name, v := range map[string]float64{
		"meanMs": st.MeanMs, "p50Ms": st.P50Ms, "p95Ms": st.P95Ms,
		"p99Ms": st.P99Ms, "maxMs": st.MaxMs, "errorRate": st.ErrorRate,
	} {
		if !finite(v) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms || st.P99Ms > st.MaxMs {
		t.Errorf("quantiles out of order: %+v", st)
	}
}

// TestSummarizeLatenciesDegenerate pins the percentile semantics for
// sample sizes the interpolation formula degenerates on. A short or
// error-heavy run must still render a well-formed report: every
// latency field defined, finite, and ordered.
func TestSummarizeLatenciesDegenerate(t *testing.T) {
	// n=0: an endpoint that recorded nothing (every request was a
	// transport error) summarizes to all-zero stats, not NaN or an error.
	st, err := summarizeLatencies(nil, 0)
	if err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if st.Count != 0 || st.P50Ms != 0 || st.P95Ms != 0 || st.P99Ms != 0 || st.MaxMs != 0 || st.ErrorRate != 0 {
		t.Fatalf("n=0: want all-zero stats, got %+v", st)
	}
	checkOrdered(t, st)

	// n=1: every quantile is the single sample.
	st, err = summarizeLatencies([]float64{0.010}, 1)
	if err != nil {
		t.Fatalf("n=1: %v", err)
	}
	checkOrdered(t, st)
	for name, v := range map[string]float64{"p50Ms": st.P50Ms, "p95Ms": st.P95Ms, "p99Ms": st.P99Ms, "maxMs": st.MaxMs} {
		if v != 10 {
			t.Errorf("n=1: %s = %v, want 10", name, v)
		}
	}
	if st.ErrorRate != 1 {
		t.Errorf("n=1: errorRate = %v, want 1", st.ErrorRate)
	}

	// n=2: interpolated quantiles land strictly between the samples and
	// stay ordered; Max is the larger sample.
	st, err = summarizeLatencies([]float64{0.020, 0.010}, 0)
	if err != nil {
		t.Fatalf("n=2: %v", err)
	}
	checkOrdered(t, st)
	if st.P50Ms < 10 || st.P50Ms > 20 || st.MaxMs != 20 {
		t.Errorf("n=2: p50 %v (want within [10,20]), max %v (want 20)", st.P50Ms, st.MaxMs)
	}
}

// failingTarget answers the warmup with a 200 and every scheduled op
// with a 400 envelope carrying a unique requestId, so the runner's
// failed-ID sampling has something to capture.
type failingTarget struct{ calls atomic.Int64 }

func (ft *failingTarget) Do(_ context.Context, _, _ string, _ []byte) (int, []byte, error) {
	n := ft.calls.Add(1)
	if n == 1 { // the warmup /predict must succeed for Run to proceed
		return 200, []byte(`{}`), nil
	}
	body := fmt.Sprintf(`{"error":"induced","status":400,"requestId":"fg-test-%d"}`, n)
	return 400, []byte(body), nil
}

// TestFailedRequestIDsSampled: non-2xx responses contribute their
// envelope requestId to the report, bounded per worker and overall, so
// a failing gate can name traceable requests without flooding the
// report under a total outage.
func TestFailedRequestIDsSampled(t *testing.T) {
	r := New(&failingTarget{}, Options{Requests: 100, Concurrency: 4, Seed: 1})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Errors != 100 {
		t.Fatalf("errors = %d, want 100", rep.Overall.Errors)
	}
	// 4 workers × the per-worker cap of 8 exactly fills the overall cap.
	if len(rep.FailedRequestIDs) != maxFailedIDs {
		t.Fatalf("sampled %d failed IDs, want %d", len(rep.FailedRequestIDs), maxFailedIDs)
	}
	seen := make(map[string]bool)
	for _, id := range rep.FailedRequestIDs {
		if id == "" || seen[id] {
			t.Errorf("failed ID %q: want unique and non-empty", id)
		}
		seen[id] = true
	}
}

// TestFailedRequestIDsAbsentOnCleanRun: a clean run's report omits the
// field entirely (it is omitempty, so the JSON stays unchanged for
// consumers of healthy reports).
func TestFailedRequestIDsAbsentOnCleanRun(t *testing.T) {
	r := New(testTarget(t), Options{Requests: 20, Concurrency: 2, Seed: 1})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Errors != 0 {
		t.Fatalf("clean run reported %d errors", rep.Overall.Errors)
	}
	if len(rep.FailedRequestIDs) != 0 {
		t.Fatalf("clean run sampled failed IDs: %v", rep.FailedRequestIDs)
	}
}
