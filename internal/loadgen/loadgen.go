// Package loadgen is the deterministic load-generation and soak harness
// for the prediction service: it replays a seeded workload mix of
// /predict, /select, /observe, and /runs requests at configurable
// concurrency against an in-process or remote server, records
// per-endpoint latency quantiles and error rates, and — when asked —
// interleaves drift-driven recalibrations with the read traffic to
// assert the serve-path cache never serves a pre-recalibration answer
// after the recalibration is known complete.
//
// Determinism contract: the op sequence (kinds, bodies, per-worker
// assignment) is a pure function of Options, fingerprinted by the
// workload checksum in the report. Two runs with equal options replay
// byte-identical request streams; only the measured latencies and the
// interleaving across workers vary.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"freerideg/internal/bench"
	"freerideg/internal/fgservice"
	"freerideg/internal/units"
)

// Mix holds the relative weights of the request kinds in the generated
// workload. The zero value selects DefaultMix. The batch kinds weigh
// zero by default; because they extend the cumulative weight ranges at
// the end, a mix without them generates exactly the op stream (and
// workload checksum) it did before batches existed.
type Mix struct {
	Predict      int `json:"predict"`
	Select       int `json:"select"`
	Observe      int `json:"observe"`
	Runs         int `json:"runs"`
	PredictBatch int `json:"predictBatch,omitempty"`
	SelectBatch  int `json:"selectBatch,omitempty"`
}

// DefaultMix is a read-heavy mix: mostly predictions, some selections,
// a trickle of estimator observations and calibration runs — enough
// write traffic to keep the caches honest without drowning the reads.
func DefaultMix() Mix { return Mix{Predict: 6, Select: 2, Observe: 1, Runs: 1} }

func (m Mix) total() int {
	return m.Predict + m.Select + m.Observe + m.Runs + m.PredictBatch + m.SelectBatch
}

// ParseMix parses "predict=6,select=2,observe=1,runs=1,selectbatch=1".
// Omitted kinds weigh zero; an empty string selects DefaultMix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix term %q: want kind=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q: want a non-negative integer", v)
		}
		switch k {
		case "predict":
			m.Predict = w
		case "select":
			m.Select = w
		case "observe":
			m.Observe = w
		case "runs":
			m.Runs = w
		case "predictbatch":
			m.PredictBatch = w
		case "selectbatch":
			m.SelectBatch = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix kind %q (want predict, select, observe, runs, predictbatch, or selectbatch)", k)
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has zero total weight", s)
	}
	return m, nil
}

// Options configure one load run. Zero values select the defaults noted
// per field.
type Options struct {
	// Requests is the total number of generated operations (default 200).
	Requests int
	// Concurrency is the worker count; op i runs on worker i mod
	// Concurrency (default 4).
	Concurrency int
	// Seed drives every random choice in the workload.
	Seed int64
	// Mix weighs the request kinds (zero value: DefaultMix).
	Mix Mix
	// App is the application every request targets (default "kmeans").
	App string
	// BaseBytes is the mid-point dataset size; generated sizes span
	// 0.5×..2× around it (default 64MB).
	BaseBytes units.Bytes
	// Coherence, when positive, runs that many drift-driven
	// recalibration batches concurrently with the workers and turns on
	// the storeVersion monotonicity check on every /predict and /select
	// response (see Report.Coherence).
	Coherence int
	// Sites are the replica sites /observe ops report transfers for
	// (default: the fgservice demo topology's site names).
	Sites []string
	// Cluster is the compute cluster every generated config targets
	// (default: the calibrated Pentium/Myrinet testbed cluster).
	Cluster string
	// ClientTimeout, when positive, bounds each scheduled op with a
	// per-request context deadline — the knob cancellation soaks use to
	// abandon requests mid-handling. It deliberately does not apply to
	// the warmup request or the coherence coordinator, whose exchanges
	// must complete for the run to mean anything. Timed-out ops land in
	// Report.TransportTimeouts (or as 504 statuses when the serve plane
	// answers first). The op schedule — and therefore the workload
	// checksum — is independent of it.
	ClientTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Mix.total() == 0 {
		o.Mix = DefaultMix()
	}
	if o.App == "" {
		o.App = "kmeans"
	}
	if o.BaseBytes <= 0 {
		o.BaseBytes = 64 * units.MB
	}
	if len(o.Sites) == 0 {
		for _, s := range fgservice.DefaultSites() {
			o.Sites = append(o.Sites, s.Name)
		}
	}
	if o.Cluster == "" {
		o.Cluster = bench.PentiumCluster
	}
	return o
}

// op is one pre-generated request of the workload. items is the batch
// item count (0 for singular ops), folded into per-run accounting.
type op struct {
	path  string
	body  string
	items int
}

// variants rotates requests across the paper's three model variants
// (plus the server default) so cache keys span the variant dimension.
var variants = []string{"", "nocomm", "reduction", "global"}

// sizeStrings renders the three dataset sizes the workload draws from:
// half, base, and double, in whole megabytes so they survive the wire
// round-trip through units.ParseBytes exactly.
func sizeStrings(base units.Bytes) []string {
	mb := int64(base / units.MB)
	if mb < 2 {
		mb = 2
	}
	return []string{
		fmt.Sprintf("%dMB", mb/2),
		fmt.Sprintf("%dMB", mb),
		fmt.Sprintf("%dMB", 2*mb),
	}
}

// baseConfig is the fixed configuration /runs samples (and the warmup
// prediction) use: calibration traffic concentrates on one config so
// drift accumulates there instead of scattering.
func baseConfig(o Options, size string) fgservice.ConfigRequest {
	return fgservice.ConfigRequest{
		Cluster:      o.Cluster,
		DataNodes:    1,
		ComputeNodes: 2,
		Bandwidth:    "100MB",
		DatasetBytes: size,
	}
}

// schedule pre-generates the whole op sequence from the seed and
// fingerprints it. Generating everything up front (rather than rolling
// dice inside workers) is what makes the workload independent of
// scheduling: the request stream is fixed before the first byte is
// sent.
func schedule(o Options) ([]op, string) {
	rng := rand.New(rand.NewSource(o.Seed))
	sizes := sizeStrings(o.BaseBytes)
	ops := make([]op, o.Requests)
	sum := fnv.New64a()
	// The batch kinds extend the cumulative ranges at the end: with zero
	// batch weights the draw bound and every branch are exactly the
	// pre-batch schedule, so historical seeds keep their checksums.
	bounds := [6]int{
		o.Mix.Predict,
		o.Mix.Predict + o.Mix.Select,
		o.Mix.Predict + o.Mix.Select + o.Mix.Observe,
		o.Mix.Predict + o.Mix.Select + o.Mix.Observe + o.Mix.Runs,
		o.Mix.Predict + o.Mix.Select + o.Mix.Observe + o.Mix.Runs + o.Mix.PredictBatch,
		o.Mix.total(),
	}
	for i := range ops {
		k := rng.Intn(bounds[5])
		switch {
		case k < bounds[0]:
			ops[i] = predictOp(rng, o, sizes)
		case k < bounds[1]:
			ops[i] = selectOp(rng, o, sizes)
		case k < bounds[2]:
			ops[i] = observeOp(rng, o, sizes)
		case k < bounds[3]:
			ops[i] = runsOp(rng, o, sizes)
		case k < bounds[4]:
			ops[i] = predictBatchOp(rng, o, sizes)
		default:
			ops[i] = selectBatchOp(rng, o, sizes)
		}
		sum.Write([]byte(ops[i].path))
		sum.Write([]byte{0})
		sum.Write([]byte(ops[i].body))
		sum.Write([]byte{0})
	}
	return ops, fmt.Sprintf("%016x", sum.Sum64())
}

func marshalOp(path string, req any) op {
	b, err := json.Marshal(req)
	if err != nil {
		// The request types marshal by construction; a failure here is a
		// programming error, not load-dependent.
		panic(fmt.Sprintf("loadgen: marshaling %s request: %v", path, err))
	}
	return op{path: path, body: string(b)}
}

// predictReq draws one predict request; predictOp and the batch
// generator share it so singular and batched items cover the same
// request space (and therefore the same cache keys).
func predictReq(rng *rand.Rand, o Options, sizes []string) fgservice.PredictRequest {
	dn := []int{1, 2, 4}[rng.Intn(3)]
	cn := dn * []int{1, 2, 4}[rng.Intn(3)]
	bw := []string{"50MB", "100MB", "200MB"}[rng.Intn(3)]
	size := sizes[rng.Intn(len(sizes))]
	variant := variants[rng.Intn(len(variants))]
	return fgservice.PredictRequest{
		App:     o.App,
		Variant: variant,
		Config: fgservice.ConfigRequest{
			Cluster:      o.Cluster,
			DataNodes:    dn,
			ComputeNodes: cn,
			Bandwidth:    bw,
			DatasetBytes: size,
		},
	}
}

func predictOp(rng *rand.Rand, o Options, sizes []string) op {
	return marshalOp("/predict", predictReq(rng, o, sizes))
}

// selectReq draws one select request (see predictReq).
func selectReq(rng *rand.Rand, o Options, sizes []string) fgservice.SelectRequest {
	size := sizes[rng.Intn(len(sizes))]
	limit := []int{0, 1, 3}[rng.Intn(3)]
	variant := variants[rng.Intn(len(variants))]
	deadline := ""
	if rng.Intn(4) == 0 {
		// A generous deadline keeps the capacity-planning path exercised
		// without ever being unreachable for these dataset sizes.
		deadline = "2h"
	}
	return fgservice.SelectRequest{
		App:      o.App,
		Size:     size,
		Limit:    limit,
		Deadline: deadline,
		Variant:  variant,
	}
}

func selectOp(rng *rand.Rand, o Options, sizes []string) op {
	return marshalOp("/select", selectReq(rng, o, sizes))
}

// batchSizes are the seeded item counts batch ops draw from: small
// enough to stay cheap in a mixed workload, large enough that the
// amortized plane actually fans out.
var batchSizes = []int{4, 16, 64}

func predictBatchOp(rng *rand.Rand, o Options, sizes []string) op {
	n := batchSizes[rng.Intn(len(batchSizes))]
	items := make([]fgservice.PredictRequest, n)
	for i := range items {
		items[i] = predictReq(rng, o, sizes)
	}
	out := marshalOp("/predict/batch", fgservice.PredictBatchRequest{Items: items})
	out.items = n
	return out
}

func selectBatchOp(rng *rand.Rand, o Options, sizes []string) op {
	n := batchSizes[rng.Intn(len(batchSizes))]
	items := make([]fgservice.SelectRequest, n)
	for i := range items {
		items[i] = selectReq(rng, o, sizes)
	}
	out := marshalOp("/select/batch", fgservice.SelectBatchRequest{Items: items})
	out.items = n
	return out
}

func observeOp(rng *rand.Rand, o Options, sizes []string) op {
	site := o.Sites[rng.Intn(len(o.Sites))]
	size := sizes[rng.Intn(len(sizes))]
	elapsed := []string{"500ms", "1s", "2s", "4s"}[rng.Intn(4)]
	return marshalOp("/observe", fgservice.ObserveRequest{
		Site:    site,
		Cluster: o.Cluster,
		Bytes:   size,
		Elapsed: elapsed,
	})
}

func runsOp(rng *rand.Rand, o Options, sizes []string) op {
	// Jitter within ±10% stays under the 15% drift threshold on its own;
	// sustained recalibration pressure comes from the coherence batches,
	// not the background run stream.
	jitter := 0.9 + 0.2*rng.Float64()
	return marshalOp("/runs", fgservice.RunRequest{
		App:      o.App,
		Config:   baseConfig(o, sizes[1]),
		Tdisk:    scaleDur(2*time.Second, jitter),
		Tnetwork: scaleDur(time.Second, jitter),
		Tcompute: scaleDur(8*time.Second, jitter),
		// An explicit iteration count keeps adopted-on-first-run profiles
		// valid even when a /runs op wins the race against self-profiling.
		Iterations: 10,
	})
}

func scaleDur(d time.Duration, f float64) string {
	return (time.Duration(float64(d) * f)).String()
}

// post is the shared POST-JSON helper for the warmup request and the
// recalibration coordinator — the exchanges that must complete, so they
// run unbounded rather than under Options.ClientTimeout.
func post(t Target, path, body string) (int, []byte, error) {
	return t.Do(context.Background(), http.MethodPost, path, []byte(body))
}
