package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"freerideg/internal/fgservice"
	"freerideg/internal/stats"
)

// Runner replays one pre-generated workload against a target. Build it
// with New; the op schedule is fixed at construction, so Checksum is
// available before (and unchanged by) Run.
type Runner struct {
	opts     Options
	target   Target
	ops      []op
	checksum string

	// floor is the highest profile-store version published by a
	// completed recalibration. Workers load it before each read; any
	// /predict or /select response carrying a smaller storeVersion was
	// computed before a recalibration the service had already finished —
	// a stale cache serve, counted as a coherence violation.
	floor  atomic.Uint64
	recals atomic.Uint64
}

// New builds a runner: options are defaulted and the full op schedule
// is generated from the seed immediately.
func New(target Target, opts Options) *Runner {
	opts = opts.withDefaults()
	ops, sum := schedule(opts)
	return &Runner{opts: opts, target: target, ops: ops, checksum: sum}
}

// Checksum fingerprints the generated workload. Equal options yield
// equal checksums — the determinism handle load scripts assert on.
func (r *Runner) Checksum() string { return r.checksum }

// LatencyStats summarizes one latency population in milliseconds.
type LatencyStats struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"errorRate"`
	MeanMs    float64 `json:"meanMs"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
}

// CoherenceReport is the outcome of the interleaved-recalibration
// check: how many drifted batches ran, how many recalibrations they
// triggered, and whether any read observed a pre-recalibration answer
// after its recalibration had completed (Violations must be zero on a
// correct cache).
type CoherenceReport struct {
	Batches        int    `json:"batches"`
	Recalibrations int    `json:"recalibrations"`
	VersionFloor   uint64 `json:"versionFloor"`
	Checked        int    `json:"checked"`
	Violations     int    `json:"violations"`
	Errors         int    `json:"errors"`
}

// Report is one run's outcome. StatusCounts keys are the decimal HTTP
// status codes ("200", "503"); TransportErrors counts requests that
// never produced a status at all.
type Report struct {
	Seed             int64                   `json:"seed"`
	Requests         int                     `json:"requests"`
	Concurrency      int                     `json:"concurrency"`
	Mix              Mix                     `json:"mix"`
	App              string                  `json:"app"`
	WorkloadChecksum string                  `json:"workloadChecksum"`
	DurationSeconds  float64                 `json:"durationSeconds"`
	ThroughputRPS    float64                 `json:"throughputRps"`
	Overall          LatencyStats            `json:"overall"`
	Endpoints        map[string]LatencyStats `json:"endpoints"`
	StatusCounts     map[string]int          `json:"statusCounts"`
	TransportErrors  int                     `json:"transportErrors"`
	// TransportTimeouts is the subset of TransportErrors where the
	// client's own deadline (Options.ClientTimeout) expired before a
	// status arrived — expected casualties of a cancellation soak, which
	// gates tolerate separately from genuine transport failures. (Ops the
	// serve plane timed out first appear as 504 statuses instead.)
	TransportTimeouts int `json:"transportTimeouts,omitempty"`
	// BatchItems counts items carried by batch ops; BatchItemErrors
	// counts items that answered with a per-item error. A batch op's
	// HTTP status is 200 even when items fail, so batch failures are
	// only visible here.
	BatchItems      int              `json:"batchItems,omitempty"`
	BatchItemErrors int              `json:"batchItemErrors,omitempty"`
	Coherence       *CoherenceReport `json:"coherence,omitempty"`
	// FailedRequestIDs samples the X-FG-Request-ID correlation IDs of
	// non-2xx responses (read from the error envelope's requestId field),
	// capped at maxFailedIDs. Each ID addresses the serve plane's
	// /debug/requests ring, so a gate failure can name the exact requests
	// to pull traces for.
	FailedRequestIDs []string `json:"failedRequestIds,omitempty"`
}

// Bounds on the failed-request-ID sample: a few per worker so one
// stuck worker cannot monopolize the sample, a few dozen overall so
// the report stays readable under a total outage.
const (
	maxFailedIDsPerWorker = 8
	maxFailedIDs          = 32
)

// workerStats is one worker's private recorder; workers never share
// mutable state, so the hot loop takes no locks.
type workerStats struct {
	lat           map[string][]float64 // latency seconds per endpoint
	errs          map[string]int       // status >= 400 per endpoint
	status        map[int]int
	transport     int
	timeouts      int
	checked       int
	violations    int
	batchItems    int
	batchItemErrs int
	failedIDs     []string
}

// recordFailedID samples the correlation ID out of one error response's
// envelope, up to the per-worker cap.
func (ws *workerStats) recordFailedID(body []byte) {
	if len(ws.failedIDs) >= maxFailedIDsPerWorker {
		return
	}
	var env struct {
		RequestID string `json:"requestId"`
	}
	if json.Unmarshal(body, &env) == nil && env.RequestID != "" {
		ws.failedIDs = append(ws.failedIDs, env.RequestID)
	}
}

func newWorkerStats() *workerStats {
	return &workerStats{
		lat:    make(map[string][]float64),
		errs:   make(map[string]int),
		status: make(map[int]int),
	}
}

// versionedResponse is the slice of a /predict or /select response the
// coherence check needs.
type versionedResponse struct {
	StoreVersion uint64 `json:"storeVersion"`
}

// batchView is the slice of a batch response the runner needs: each
// item either failed (Error set) or carries its own storeVersion.
type batchView struct {
	Items []struct {
		Response *versionedResponse `json:"response"`
		Error    *struct {
			Status int `json:"status"`
		} `json:"error"`
	} `json:"items"`
}

// Run executes the workload and returns the report. The warmup request
// (one /predict at the base config, uncounted) forces the app's profile
// into the store first, so measured latencies never include the one-off
// self-profiling simulation and the coherence coordinator has a
// baseline to drift against.
func (r *Runner) Run() (Report, error) {
	warm := marshalOp("/predict", predictWarmup(r.opts))
	if status, body, err := post(r.target, warm.path, warm.body); err != nil {
		return Report{}, fmt.Errorf("loadgen: warmup predict: %w", err)
	} else if status != http.StatusOK {
		return Report{}, fmt.Errorf("loadgen: warmup predict: status %d: %s", status, body)
	}

	coh := &CoherenceReport{Batches: r.opts.Coherence}
	start := time.Now()
	var cohWG sync.WaitGroup
	if r.opts.Coherence > 0 {
		cohWG.Add(1)
		go func() {
			defer cohWG.Done()
			r.driveRecalibrations(coh)
		}()
	}

	perWorker := make([]*workerStats, r.opts.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Concurrency; w++ {
		ws := newWorkerStats()
		perWorker[w] = ws
		wg.Add(1)
		go func(w int, ws *workerStats) {
			defer wg.Done()
			for i := w; i < len(r.ops); i += r.opts.Concurrency {
				r.runOp(r.ops[i], ws)
			}
		}(w, ws)
	}
	wg.Wait()
	cohWG.Wait()
	elapsed := time.Since(start)

	rep, err := r.assemble(perWorker, elapsed)
	if err != nil {
		return Report{}, err
	}
	if r.opts.Coherence > 0 {
		coh.Recalibrations = int(r.recals.Load())
		coh.VersionFloor = r.floor.Load()
		for _, ws := range perWorker {
			coh.Checked += ws.checked
			coh.Violations += ws.violations
		}
		rep.Coherence = coh
	}
	return rep, nil
}

func predictWarmup(o Options) fgservice.PredictRequest {
	return fgservice.PredictRequest{App: o.App, Config: baseConfig(o, sizeStrings(o.BaseBytes)[1])}
}

// runOp issues one op and records its outcome. The coherence floor is
// loaded before the request is sent: any recalibration published by
// then must be visible in the response's storeVersion.
func (r *Runner) runOp(o op, ws *workerStats) {
	floor := r.floor.Load()
	ctx := context.Background()
	if r.opts.ClientTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.ClientTimeout)
		defer cancel()
	}
	start := time.Now()
	status, body, err := r.target.Do(ctx, http.MethodPost, o.path, []byte(o.body))
	seconds := time.Since(start).Seconds()
	if err != nil {
		ws.transport++
		if isTimeout(err) {
			ws.timeouts++
		}
		return
	}
	ws.lat[o.path] = append(ws.lat[o.path], seconds)
	ws.status[status]++
	if status >= 400 {
		ws.errs[o.path]++
		ws.recordFailedID(body)
		return
	}
	switch o.path {
	case "/predict", "/select":
		if r.opts.Coherence > 0 {
			var v versionedResponse
			if json.Unmarshal(body, &v) == nil {
				ws.checked++
				if v.StoreVersion < floor {
					ws.violations++
				}
			}
		}
	case "/predict/batch", "/select/batch":
		ws.batchItems += o.items
		var bv batchView
		if json.Unmarshal(body, &bv) != nil {
			return
		}
		for _, item := range bv.Items {
			if item.Error != nil {
				ws.batchItemErrs++
				continue
			}
			// The coherence floor applies per item: a batch sent after a
			// recalibration completed must not carry any pre-recalibration
			// item, exactly like a singular request.
			if r.opts.Coherence > 0 && item.Response != nil {
				ws.checked++
				if item.Response.StoreVersion < floor {
					ws.violations++
				}
			}
		}
	}
}

// assemble merges the per-worker recorders into the report.
func (r *Runner) assemble(perWorker []*workerStats, elapsed time.Duration) (Report, error) {
	rep := Report{
		Seed:             r.opts.Seed,
		Requests:         len(r.ops),
		Concurrency:      r.opts.Concurrency,
		Mix:              r.opts.Mix,
		App:              r.opts.App,
		WorkloadChecksum: r.checksum,
		DurationSeconds:  elapsed.Seconds(),
		Endpoints:        make(map[string]LatencyStats),
		StatusCounts:     make(map[string]int),
	}
	byPath := make(map[string][]float64)
	errsByPath := make(map[string]int)
	var all []float64
	totalErrs := 0
	for _, ws := range perWorker {
		for path, lats := range ws.lat {
			byPath[path] = append(byPath[path], lats...)
			all = append(all, lats...)
		}
		for path, n := range ws.errs {
			errsByPath[path] += n
			totalErrs += n
		}
		for code, n := range ws.status {
			rep.StatusCounts[fmt.Sprintf("%d", code)] += n
		}
		rep.TransportErrors += ws.transport
		rep.TransportTimeouts += ws.timeouts
		rep.BatchItems += ws.batchItems
		rep.BatchItemErrors += ws.batchItemErrs
		for _, id := range ws.failedIDs {
			if len(rep.FailedRequestIDs) >= maxFailedIDs {
				break
			}
			rep.FailedRequestIDs = append(rep.FailedRequestIDs, id)
		}
	}
	for path, lats := range byPath {
		st, err := summarizeLatencies(lats, errsByPath[path])
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: summarizing %s: %w", path, err)
		}
		rep.Endpoints[path] = st
	}
	overall, err := summarizeLatencies(all, totalErrs)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: summarizing overall latencies: %w", err)
	}
	rep.Overall = overall
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	return rep, nil
}

func summarizeLatencies(seconds []float64, errors int) (LatencyStats, error) {
	st := LatencyStats{Count: len(seconds), Errors: errors}
	if len(seconds) == 0 {
		return st, nil
	}
	st.ErrorRate = float64(errors) / float64(len(seconds))
	st.MeanMs = stats.Mean(seconds) * 1e3
	max, err := stats.Max(seconds)
	if err != nil {
		return st, err
	}
	st.MaxMs = max * 1e3
	for _, q := range []struct {
		q   float64
		dst *float64
	}{{0.50, &st.P50Ms}, {0.95, &st.P95Ms}, {0.99, &st.P99Ms}} {
		v, err := stats.Quantile(seconds, q.q)
		if err != nil {
			return st, err
		}
		*q.dst = v * 1e3
	}
	return st, nil
}

// recalSamples is how many drifted runs one coherence batch posts: the
// store's default MinSamples plus one for slack, so every batch clears
// the auto-recalibration gate.
const recalSamples = 6

// predictView is the component slice of a /predict response the
// coordinator scales its drifted observations from.
type predictView struct {
	Tdisk    time.Duration `json:"tdiskNs"`
	Tnetwork time.Duration `json:"tnetworkNs"`
	Tcompute time.Duration `json:"tcomputeNs"`
}

// ingestView is the slice of a /runs response the coordinator needs.
type ingestView struct {
	Recalibrated bool   `json:"recalibrated"`
	StoreVersion uint64 `json:"storeVersion"`
}

// driveRecalibrations runs the coherence batches: each batch reads the
// current prediction for the calibration config, posts enough uniformly
// drifted observations (alternating 2× slower / 2× faster, so the
// profile stays bounded) to trigger a recalibration, and publishes the
// resulting store version as the workers' monotonicity floor.
func (r *Runner) driveRecalibrations(coh *CoherenceReport) {
	cfg := baseConfig(r.opts, sizeStrings(r.opts.BaseBytes)[1])
	for b := 0; b < r.opts.Coherence; b++ {
		factor := 2.0
		if b%2 == 1 {
			factor = 0.5
		}
		pv, ok := r.currentPrediction(cfg, coh)
		if !ok {
			continue
		}
		for i := 0; i < recalSamples; i++ {
			run := marshalOp("/runs", fgservice.RunRequest{
				App:      r.opts.App,
				Config:   cfg,
				Tdisk:    scaleDur(atLeastMs(pv.Tdisk), factor),
				Tnetwork: scaleDur(atLeastMs(pv.Tnetwork), factor),
				Tcompute: scaleDur(atLeastMs(pv.Tcompute), factor),
			})
			status, body, err := post(r.target, run.path, run.body)
			if err != nil || status != http.StatusOK {
				coh.Errors++
				continue
			}
			var iv ingestView
			if json.Unmarshal(body, &iv) != nil {
				coh.Errors++
				continue
			}
			if iv.Recalibrated {
				r.recals.Add(1)
				raiseFloor(&r.floor, iv.StoreVersion)
			}
		}
	}
}

// currentPrediction fetches the model's current view of the calibration
// config, so the batch's drifted observations are relative to what the
// service would predict right now.
func (r *Runner) currentPrediction(cfg fgservice.ConfigRequest, coh *CoherenceReport) (predictView, bool) {
	req := marshalOp("/predict", fgservice.PredictRequest{App: r.opts.App, Config: cfg})
	status, body, err := post(r.target, req.path, req.body)
	if err != nil || status != http.StatusOK {
		coh.Errors++
		return predictView{}, false
	}
	var pv predictView
	if json.Unmarshal(body, &pv) != nil {
		coh.Errors++
		return predictView{}, false
	}
	return pv, true
}

// atLeastMs floors a component at 1ms so a variant predicting a zero
// component still yields a valid positive observation to scale.
func atLeastMs(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return time.Millisecond
	}
	return d
}

// isTimeout classifies a transport error as a client-deadline expiry:
// either the context deadline itself or a net.Error that reports
// Timeout (the http.Client surfaces both shapes depending on where in
// the exchange the deadline landed).
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// raiseFloor lifts the monotonic floor to v if it is higher.
func raiseFloor(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
