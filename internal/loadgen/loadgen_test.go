package loadgen

import (
	"context"
	"net/http"
	"testing"
	"time"

	"freerideg/internal/fgservice"
	"freerideg/internal/units"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("predict=3,select=2,runs=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Predict: 3, Select: 2, Runs: 1}) {
		t.Fatalf("ParseMix = %+v", m)
	}
	if m, err := ParseMix(""); err != nil || m != DefaultMix() {
		t.Fatalf("empty mix = %+v, %v; want default", m, err)
	}
	for _, bad := range []string{"predict", "predict=-1", "walk=3", "predict=0,select=0", "predict=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	opts := Options{Requests: 300, Seed: 42}
	a := New(nil, opts)
	b := New(nil, opts)
	if a.Checksum() != b.Checksum() {
		t.Fatalf("same seed, different checksums: %s vs %s", a.Checksum(), b.Checksum())
	}
	for i := range a.ops {
		if a.ops[i] != b.ops[i] {
			t.Fatalf("op %d differs:\n %+v\n %+v", i, a.ops[i], b.ops[i])
		}
	}
	c := New(nil, Options{Requests: 300, Seed: 43})
	if c.Checksum() == a.Checksum() {
		t.Fatal("different seeds produced the same workload checksum")
	}
}

func TestScheduleCoversAllKinds(t *testing.T) {
	r := New(nil, Options{Requests: 200, Seed: 7})
	seen := make(map[string]int)
	for _, o := range r.ops {
		seen[o.path]++
	}
	for _, path := range []string{"/predict", "/select", "/observe", "/runs"} {
		if seen[path] == 0 {
			t.Errorf("200-op default-mix schedule generated no %s ops (%v)", path, seen)
		}
	}
}

// testTarget builds an in-process target over a fresh service.
func testTarget(t *testing.T) Target {
	t.Helper()
	// MaxInFlight must admit every worker plus the coherence coordinator,
	// or the limiter sheds load and the soak's zero-error assertion reads
	// throttling as failure.
	srv, err := fgservice.New(fgservice.Options{BaseBytes: 16 * units.MB, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	return NewHandlerTarget(srv.Handler())
}

func TestRunInProcess(t *testing.T) {
	r := New(testTarget(t), Options{Requests: 60, Concurrency: 4, Seed: 1, BaseBytes: 16 * units.MB})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkloadChecksum != r.Checksum() {
		t.Errorf("report checksum %s != runner checksum %s", rep.WorkloadChecksum, r.Checksum())
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors", rep.TransportErrors)
	}
	if rep.Overall.Count != 60 {
		t.Fatalf("overall count = %d, want 60", rep.Overall.Count)
	}
	if rep.Overall.Errors != 0 || rep.StatusCounts["200"] != 60 {
		t.Fatalf("expected 60 clean 200s, got errors=%d statusCounts=%v",
			rep.Overall.Errors, rep.StatusCounts)
	}
	if rep.ThroughputRPS <= 0 {
		t.Error("non-positive throughput")
	}
	sum := 0
	for path, st := range rep.Endpoints {
		sum += st.Count
		if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms || st.P99Ms > st.MaxMs {
			t.Errorf("%s: quantiles out of order: %+v", path, st)
		}
	}
	if sum != rep.Overall.Count {
		t.Errorf("endpoint counts sum to %d, want %d", sum, rep.Overall.Count)
	}
	if rep.Coherence != nil {
		t.Error("coherence report present without Coherence option")
	}
}

// TestCoherenceSoak is the race-focused soak: workers hammer the
// cached read path while the coordinator drives real recalibrations
// through /runs. Run under -race (scripts/check.sh does) it doubles as
// the concurrency check on the serve cache; the report must show
// recalibrations happening and zero monotonicity violations — no read
// ever returned a pre-recalibration answer after its recalibration
// completed.
func TestCoherenceSoak(t *testing.T) {
	r := New(testTarget(t), Options{
		Requests:    150,
		Concurrency: 8,
		Seed:        3,
		BaseBytes:   16 * units.MB,
		Coherence:   4,
	})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	coh := rep.Coherence
	if coh == nil {
		t.Fatal("no coherence report")
	}
	if coh.Errors != 0 {
		t.Fatalf("coherence coordinator errors: %+v", coh)
	}
	if coh.Recalibrations < 1 {
		t.Fatalf("no recalibrations triggered: %+v", coh)
	}
	if coh.Checked == 0 {
		t.Fatalf("no responses version-checked: %+v", coh)
	}
	if coh.Violations != 0 {
		t.Fatalf("%d coherence violations: a cached response predated a completed recalibration (%+v)",
			coh.Violations, coh)
	}
	if coh.VersionFloor == 0 {
		t.Fatalf("recalibrations reported but floor never rose: %+v", coh)
	}
	if rep.TransportErrors != 0 || rep.Overall.Errors != 0 {
		t.Fatalf("soak saw errors: transport=%d http=%d status=%v",
			rep.TransportErrors, rep.Overall.Errors, rep.StatusCounts)
	}
}

func TestHandlerTargetRecordsStatusAndBody(t *testing.T) {
	tgt := NewHandlerTarget(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	status, body, err := tgt.Do(context.Background(), http.MethodPost, "/x", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTeapot || string(body) != "short and stout" {
		t.Fatalf("got %d %q", status, body)
	}
	status, _, err = tgt.Do(context.Background(), http.MethodGet, "/x", nil)
	if err != nil || status != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, %v", status, err)
	}
}

// TestBatchWeightsPreserveLegacyChecksums: a mix without batch kinds
// must generate exactly the op stream it did before batches existed —
// adding zero-weight kinds may not shift the rng draw sequence.
func TestBatchWeightsPreserveLegacyChecksums(t *testing.T) {
	plain := New(nil, Options{Requests: 300, Seed: 42})
	explicit := New(nil, Options{Requests: 300, Seed: 42,
		Mix: Mix{Predict: 6, Select: 2, Observe: 1, Runs: 1, PredictBatch: 0, SelectBatch: 0}})
	if plain.Checksum() != explicit.Checksum() {
		t.Fatalf("zero batch weights changed the workload: %s vs %s",
			plain.Checksum(), explicit.Checksum())
	}
	for _, o := range plain.ops {
		if o.items != 0 {
			t.Fatalf("batchless mix generated a batch op: %+v", o)
		}
	}
}

// TestBatchScheduleDeterministic: batch ops (including their seeded
// item counts) are part of the fingerprinted stream.
func TestBatchScheduleDeterministic(t *testing.T) {
	opts := Options{Requests: 120, Seed: 9,
		Mix: Mix{Predict: 4, Select: 2, Observe: 1, Runs: 1, PredictBatch: 2, SelectBatch: 2}}
	a, b := New(nil, opts), New(nil, opts)
	if a.Checksum() != b.Checksum() {
		t.Fatalf("same seed, different batch checksums: %s vs %s", a.Checksum(), b.Checksum())
	}
	sawBatch := false
	sizes := make(map[int]bool)
	for i := range a.ops {
		if a.ops[i] != b.ops[i] {
			t.Fatalf("op %d differs", i)
		}
		if a.ops[i].items > 0 {
			sawBatch = true
			sizes[a.ops[i].items] = true
		}
	}
	if !sawBatch {
		t.Fatal("batch-weighted schedule generated no batch ops")
	}
	if len(sizes) < 2 {
		t.Fatalf("batch sizes did not vary: %v", sizes)
	}
}

// TestBatchRunInProcess drives a batch-heavy mix end to end: every op
// answers 200, every batch item succeeds, and the per-item coherence
// check holds under interleaved recalibrations.
func TestBatchRunInProcess(t *testing.T) {
	r := New(testTarget(t), Options{
		Requests:    80,
		Concurrency: 4,
		Seed:        5,
		BaseBytes:   16 * units.MB,
		Coherence:   2,
		Mix:         Mix{Predict: 2, Select: 1, Observe: 1, Runs: 1, PredictBatch: 3, SelectBatch: 3},
	})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 || rep.Overall.Errors != 0 {
		t.Fatalf("batch soak saw errors: transport=%d http=%d status=%v",
			rep.TransportErrors, rep.Overall.Errors, rep.StatusCounts)
	}
	if rep.BatchItems == 0 {
		t.Fatal("batch mix carried no items")
	}
	if rep.BatchItemErrors != 0 {
		t.Fatalf("%d of %d batch items failed", rep.BatchItemErrors, rep.BatchItems)
	}
	coh := rep.Coherence
	if coh == nil || coh.Checked == 0 {
		t.Fatalf("no coherence checks ran: %+v", coh)
	}
	if coh.Violations != 0 {
		t.Fatalf("%d batch coherence violations (%+v)", coh.Violations, coh)
	}
	if ep, ok := rep.Endpoints["/select/batch"]; !ok || ep.Count == 0 {
		t.Fatalf("no /select/batch latencies recorded: %v", rep.Endpoints)
	}
}

// TestCancellationSoak hammers the serve plane with a client deadline
// tight enough that many requests are abandoned mid-handling. Run under
// -race (scripts/check.sh does) it is the concurrency gate on the
// cancellation paths: waiter abandonment, fill adoption, last-waiter-out
// fill cancellation, and batch item sweeping all interleave here. The
// assertions pin the contract: an abandoned request surfaces as a 499 or
// 504 JSON answer — never a transport error, a plain-text body, or a
// stray 5xx — and the run itself always completes.
func TestCancellationSoak(t *testing.T) {
	r := New(testTarget(t), Options{
		Requests:      200,
		Concurrency:   8,
		Seed:          11,
		BaseBytes:     16 * units.MB,
		ClientTimeout: 500 * time.Microsecond,
		Mix:           Mix{Predict: 3, Select: 3, Observe: 1, Runs: 1, PredictBatch: 1, SelectBatch: 1},
	})
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// In-process dispatch never fails at the transport: the middleware
	// answers the envelope itself when the context ends.
	if rep.TransportErrors != rep.TransportTimeouts {
		t.Fatalf("non-timeout transport errors: transport=%d timeouts=%d",
			rep.TransportErrors, rep.TransportTimeouts)
	}
	for code, n := range rep.StatusCounts {
		switch code {
		case "200", "499", "504":
		case "503":
			// Legitimate shedding: a timed-out client fires its next op
			// while the abandoned handler still holds its slot for the
			// instant it takes to unwind (or to finish a detached
			// profiling run). The limiter answering 503 in that window
			// is backpressure working, not a stuck slot.
		default:
			t.Errorf("%d responses with unexpected status %s under client timeouts", n, code)
		}
	}
	if rep.Overall.Count != 200 {
		t.Fatalf("run did not complete: %d of 200 ops recorded", rep.Overall.Count)
	}
}

// TestClientTimeoutPreservesChecksum: ClientTimeout changes when ops are
// abandoned, never which ops are generated — the seeded schedule (and
// its fingerprint) must be bit-identical with and without it.
func TestClientTimeoutPreservesChecksum(t *testing.T) {
	plain := New(nil, Options{Requests: 300, Seed: 42})
	timed := New(nil, Options{Requests: 300, Seed: 42, ClientTimeout: time.Millisecond})
	if plain.Checksum() != timed.Checksum() {
		t.Fatalf("ClientTimeout perturbed the workload checksum: %s vs %s",
			plain.Checksum(), timed.Checksum())
	}
}
