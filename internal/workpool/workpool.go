// Package workpool provides a persistent, bounded worker pool for
// fanning an indexed batch of independent tasks across goroutines
// without per-call goroutine and channel setup.
//
// The design goal is the serve hot path: ranking rounds and batch
// endpoints fan out small units of pure arithmetic thousands of times a
// second, so spawning a fresh goroutine pool per call (the previous
// grid.Selector.Rank shape) costs more than the work itself. A Pool
// instead keeps its workers parked on one channel for the process
// lifetime and hands them batches:
//
//   - Run never blocks waiting for a free worker. The submitting
//     goroutine always participates in its own batch, and helper
//     workers are recruited with non-blocking sends — if every worker
//     is busy, the submitter simply completes the batch alone. This
//     makes nested Run calls (a batch item that itself fans out a
//     ranking round) deadlock-free by construction.
//   - Work is claimed by atomic index increments on the shared batch,
//     so tasks need no per-task allocation and workers load-balance at
//     task granularity.
//   - A batch's task order is by ascending index with results written
//     wherever fn puts them, so output is deterministic regardless of
//     how many workers the pool recruited.
package workpool

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"freerideg/internal/reqtrace"
)

// batch is one Run call's shared work descriptor. Workers claim indices
// [0, n) by incrementing next; wg counts recruited helpers. ctx, when it
// becomes done, stops workers from claiming further indices — indices
// already claimed always run to completion, so fn never observes a
// half-abandoned unit.
type batch struct {
	next atomic.Int64
	n    int64
	fn   func(i int)
	ctx  context.Context
	wg   sync.WaitGroup
}

func (b *batch) drain() {
	for {
		if b.ctx.Err() != nil {
			return
		}
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		b.fn(int(i))
	}
}

// Pool is a persistent bounded worker pool. The zero value is not
// usable; use New. Workers are started lazily on the first Run that
// wants helpers and live for the lifetime of the process.
type Pool struct {
	tokens chan *batch
	size   int
	once   sync.Once
}

// New returns a pool of n persistent workers; n < 1 selects
// GOMAXPROCS. No goroutines start until the first parallel Run.
func New(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{tokens: make(chan *batch, n), size: n}
}

// Size reports the pool's worker count.
func (p *Pool) Size() int { return p.size }

func (p *Pool) start() {
	for i := 0; i < p.size; i++ {
		go func() {
			for b := range p.tokens {
				b.drain()
				b.wg.Done()
			}
		}()
	}
}

// Run executes fn(0), fn(1), …, fn(n-1) and returns when all calls have
// completed. limit bounds how many goroutines (including the caller)
// may work on this batch concurrently; limit <= 1 runs strictly serial
// on the calling goroutine, limit < 1 or > pool size is clamped to pool
// size + 1. fn must be safe for concurrent invocation with distinct
// indices.
func (p *Pool) Run(n, limit int, fn func(i int)) {
	_ = p.RunCtx(context.Background(), n, limit, fn)
}

// RunCtx is Run with cooperative cancellation: once ctx is done, no
// goroutine working the batch claims another index. Indices claimed
// before the cancellation landed still run to completion, and RunCtx
// returns only after every claimed call has finished — so fn results
// written for claimed indices are always complete when RunCtx returns.
// The returned error is ctx.Err() when the batch was cut short (some
// index never ran), nil when every index completed.
func (p *Pool) RunCtx(ctx context.Context, n, limit int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	// On a traced request the fan-out gets one span covering the whole
	// batch (per-item spans are the caller's concern — only it knows
	// what an item means). Untraced, Child is a free no-op.
	sp := reqtrace.Child(ctx, "workpool")
	err := p.runCtx(ctx, n, limit, fn)
	if sp.Traced() {
		note := "n=" + strconv.Itoa(n)
		if err != nil {
			note += " cut-short"
		}
		sp.Annotate(note)
	}
	sp.End()
	return err
}

func (p *Pool) runCtx(ctx context.Context, n, limit int, fn func(i int)) error {
	if limit == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	helpers := p.size
	if limit > 1 && limit-1 < helpers {
		helpers = limit - 1
	}
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	p.once.Do(p.start)
	b := &batch{n: int64(n), fn: fn, ctx: ctx}
	for h := 0; h < helpers; h++ {
		b.wg.Add(1)
		select {
		case p.tokens <- b:
			continue
		default:
		}
		// Every worker is busy: give the token back and stop
		// recruiting. The caller drains whatever remains.
		b.wg.Done()
		break
	}
	b.drain()
	b.wg.Wait()
	// The batch was cut short only if cancellation landed before the
	// last index was claimed; a batch whose claims all happened before
	// ctx fired completed normally.
	if b.next.Load() < b.n && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}
