package workpool

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryIndexExactlyOnce checks the atomic work-claiming:
// every index in [0, n) runs exactly once, at every limit shape.
func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, limit := range []int{0, 1, 2, 8, 100} {
			hits := make([]atomic.Int32, n+1)
			p.Run(n, limit, func(i int) { hits[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d limit=%d: index %d ran %d times", n, limit, i, got)
				}
			}
		}
	}
}

// TestRunSerialOnCallingGoroutine pins limit=1 semantics: no helper is
// recruited, so tasks observe strictly ascending order.
func TestRunSerialOnCallingGoroutine(t *testing.T) {
	p := New(8)
	var order []int
	p.Run(50, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial run executed index %d at position %d", got, i)
		}
	}
}

// TestNestedRunDoesNotDeadlock drives batches that submit batches from
// inside their tasks; the submitter-participates design must complete
// them even when every worker is already busy.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.Run(8, 0, func(i int) {
		p.Run(8, 0, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested runs completed %d tasks, want 64", got)
	}
}

// TestRunReusesWorkers submits many batches and checks the pool never
// exceeds its worker budget (recruited helpers <= size), by bounding
// observed concurrency.
func TestRunReusesWorkers(t *testing.T) {
	const size = 3
	p := New(size)
	var inFlight, peak atomic.Int32
	for round := 0; round < 20; round++ {
		p.Run(64, 0, func(i int) {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			inFlight.Add(-1)
		})
	}
	// size helpers plus the submitting goroutine.
	if got := peak.Load(); got > size+1 {
		t.Fatalf("observed %d concurrent workers, want <= %d", got, size+1)
	}
}

// BenchmarkRunSmallBatch measures the steady-state overhead of fanning
// a small batch (the ranking-round shape) through the persistent pool.
func BenchmarkRunSmallBatch(b *testing.B) {
	p := New(0)
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(48, 0, func(j int) { sink.Add(1) })
	}
}
