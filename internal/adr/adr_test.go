package adr

import (
	"testing"
	"testing/quick"

	"freerideg/internal/units"
)

func pointsSpec(total units.Bytes) DatasetSpec {
	return DatasetSpec{
		Name:       "pts",
		TotalBytes: total,
		ElemBytes:  128,
		ChunkBytes: units.MB,
		Kind:       "points",
		Dims:       16,
		Seed:       1,
	}
}

func TestSpecValidate(t *testing.T) {
	good := pointsSpec(64 * units.MB)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []DatasetSpec{
		{},
		{Name: "x", TotalBytes: -1, ElemBytes: 8, ChunkBytes: 64, Dims: 1},
		{Name: "x", TotalBytes: 64, ElemBytes: 0, ChunkBytes: 64, Dims: 1},
		{Name: "x", TotalBytes: 64, ElemBytes: 32, ChunkBytes: 16, Dims: 1},
		{Name: "x", TotalBytes: 64, ElemBytes: 8, ChunkBytes: 64, Dims: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPartitionCoversDataset(t *testing.T) {
	spec := pointsSpec(10*units.MB + 300) // deliberately ragged
	l, err := Partition(spec, 4, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	var elems int64
	var bytes units.Bytes
	for _, c := range l.Chunks() {
		elems += c.Elems
		bytes += c.Bytes
	}
	if elems != spec.Elems() {
		t.Errorf("chunks hold %d elems, spec has %d", elems, spec.Elems())
	}
	if bytes != units.Bytes(spec.Elems())*spec.ElemBytes {
		t.Errorf("chunk bytes %v != whole-element bytes", bytes)
	}
}

func TestPartitionChunkSizes(t *testing.T) {
	spec := pointsSpec(10 * units.MB)
	l, err := Partition(spec, 2, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	chunks := l.Chunks()
	for i, c := range chunks[:len(chunks)-1] {
		if c.Bytes != units.MB {
			t.Errorf("chunk %d = %v, want exactly 1MB", i, c.Bytes)
		}
	}
	if last := chunks[len(chunks)-1]; last.Bytes > units.MB {
		t.Errorf("final chunk %v exceeds chunk size", last.Bytes)
	}
}

func TestRoundRobinBalance(t *testing.T) {
	spec := pointsSpec(64 * units.MB)
	for _, nodes := range []int{1, 2, 3, 4, 7, 8} {
		l, err := Partition(spec, nodes, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		min, max := int(^uint(0)>>1), 0
		for n := 0; n < nodes; n++ {
			got := len(l.NodeChunks(n))
			if got < min {
				min = got
			}
			if got > max {
				max = got
			}
		}
		if max-min > 1 {
			t.Errorf("nodes=%d: chunk counts spread %d..%d, want within 1", nodes, min, max)
		}
	}
}

func TestBlockedAssignsContiguousRuns(t *testing.T) {
	spec := pointsSpec(8 * units.MB)
	l, err := Partition(spec, 2, Blocked)
	if err != nil {
		t.Fatal(err)
	}
	prevHome := -1
	for _, c := range l.Chunks() {
		if c.Home < prevHome {
			t.Fatalf("blocked layout went backwards at chunk %d (home %d after %d)", c.Index, c.Home, prevHome)
		}
		prevHome = c.Home
	}
	if got := len(l.NodeChunks(0)); got != 4 {
		t.Errorf("node 0 holds %d chunks, want 4", got)
	}
}

func TestNodeChunksOutOfRange(t *testing.T) {
	spec := pointsSpec(4 * units.MB)
	l, err := Partition(spec, 2, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if l.NodeChunks(-1) != nil || l.NodeChunks(2) != nil {
		t.Error("out-of-range node returned chunks")
	}
}

func TestMaxNodeBytes(t *testing.T) {
	spec := pointsSpec(5 * units.MB) // 5 chunks over 2 nodes: 3 vs 2
	l, err := Partition(spec, 2, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.MaxNodeBytes(), 3*units.MB; got != want {
		t.Errorf("MaxNodeBytes = %v, want %v", got, want)
	}
	if got := l.NodeBytes(1); got != 2*units.MB {
		t.Errorf("NodeBytes(1) = %v, want 2MB", got)
	}
}

func TestPartitionErrors(t *testing.T) {
	spec := pointsSpec(4 * units.MB)
	if _, err := Partition(spec, 0, RoundRobin); err == nil {
		t.Error("0 nodes accepted")
	}
	tiny := spec
	tiny.TotalBytes = 10 // below one element
	if _, err := Partition(tiny, 1, RoundRobin); err == nil {
		t.Error("dataset smaller than one element accepted")
	}
	if _, err := Partition(spec, 1, DeclusterPolicy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPartitionPropertyAllElementsAssignedOnce(t *testing.T) {
	f := func(mb uint8, nodes uint8) bool {
		n := int(nodes%8) + 1
		spec := pointsSpec(units.Bytes(int(mb%32)+1) * units.MB)
		l, err := Partition(spec, n, RoundRobin)
		if err != nil {
			return false
		}
		var perNode int64
		for node := 0; node < n; node++ {
			for _, c := range l.NodeChunks(node) {
				perNode += c.Elems
			}
		}
		return perNode == spec.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	spec := pointsSpec(4 * units.MB)
	l1, _ := Partition(spec, 2, RoundRobin)
	l2, _ := Partition(spec, 4, RoundRobin)
	reg := NewRegistry()
	if err := reg.Register(Replica{Site: "siteB", Cluster: "pentium", StorageNodes: 2, Layout: l1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Replica{Site: "siteA", Cluster: "opteron", StorageNodes: 4, Layout: l2}); err != nil {
		t.Fatal(err)
	}
	reps := reg.Replicas("pts")
	if len(reps) != 2 {
		t.Fatalf("got %d replicas, want 2", len(reps))
	}
	if reps[0].Site != "siteA" || reps[1].Site != "siteB" {
		t.Errorf("replicas not sorted by site: %v, %v", reps[0].Site, reps[1].Site)
	}
	if ds := reg.Datasets(); len(ds) != 1 || ds[0] != "pts" {
		t.Errorf("Datasets() = %v, want [pts]", ds)
	}
}

func TestRegistryRejectsBadReplicas(t *testing.T) {
	spec := pointsSpec(4 * units.MB)
	l, _ := Partition(spec, 2, RoundRobin)
	reg := NewRegistry()
	if err := reg.Register(Replica{Site: "s", StorageNodes: 2}); err == nil {
		t.Error("replica without layout accepted")
	}
	if err := reg.Register(Replica{StorageNodes: 2, Layout: l}); err == nil {
		t.Error("replica without site accepted")
	}
	if err := reg.Register(Replica{Site: "s", StorageNodes: 3, Layout: l}); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if err := reg.Register(Replica{Site: "s", StorageNodes: 2, Layout: l}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Replica{Site: "s", StorageNodes: 2, Layout: l}); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestRegistryUnknownDatasetEmpty(t *testing.T) {
	reg := NewRegistry()
	if got := reg.Replicas("nope"); len(got) != 0 {
		t.Errorf("unknown dataset returned %d replicas", len(got))
	}
}
