// Package adr implements the chunked data repository substrate that the
// paper's middleware builds on (the Active Data Repository, ADR). Datasets
// are stored as fixed-size chunks declustered across the storage nodes of a
// repository; the data server retrieves chunks per node in order and ships
// them to compute nodes.
package adr

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"freerideg/internal/units"
)

// DatasetSpec describes a logical dataset held by a repository.
type DatasetSpec struct {
	// Name identifies the dataset across replicas.
	Name string
	// TotalBytes is the dataset size s in the paper's model.
	TotalBytes units.Bytes
	// ElemBytes is the size of one data element (record).
	ElemBytes units.Bytes
	// ChunkBytes is the target chunk size; the final chunk may be smaller.
	ChunkBytes units.Bytes
	// Kind selects the synthetic generator ("points", "field", "lattice").
	Kind string
	// Seed makes chunk contents reproducible across replicas and backends.
	Seed int64
	// Dims is the per-element dimensionality used by the generators
	// (point dimensionality, field vector width, lattice attributes).
	Dims int
}

// Validate reports whether the spec is internally consistent.
func (s DatasetSpec) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("adr: dataset needs a name")
	case s.TotalBytes <= 0:
		return fmt.Errorf("adr: dataset %q has non-positive size", s.Name)
	case s.ElemBytes <= 0:
		return fmt.Errorf("adr: dataset %q has non-positive element size", s.Name)
	case s.ChunkBytes < s.ElemBytes:
		return fmt.Errorf("adr: dataset %q chunk size %v below element size %v", s.Name, s.ChunkBytes, s.ElemBytes)
	case s.Dims <= 0:
		return fmt.Errorf("adr: dataset %q needs Dims >= 1", s.Name)
	}
	return nil
}

// Elems reports the number of whole elements in the dataset.
func (s DatasetSpec) Elems() int64 {
	return int64(s.TotalBytes / s.ElemBytes)
}

// Chunk is one unit of retrieval and distribution.
type Chunk struct {
	// Index is the chunk's position in the dataset (0-based).
	Index int
	// Bytes is the chunk's payload size.
	Bytes units.Bytes
	// Elems is the number of whole elements in the chunk.
	Elems int64
	// Home is the storage node that holds the chunk in this layout.
	Home int
}

// DeclusterPolicy controls how chunks are assigned to storage nodes.
type DeclusterPolicy int

const (
	// RoundRobin assigns chunk i to node i mod n (ADR's default striping).
	RoundRobin DeclusterPolicy = iota
	// Blocked assigns contiguous runs of chunks to each node.
	Blocked
)

func (p DeclusterPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Blocked:
		return "blocked"
	}
	return fmt.Sprintf("DeclusterPolicy(%d)", int(p))
}

// Layout is a dataset partitioned over the storage nodes of one repository.
type Layout struct {
	Spec   DatasetSpec
	Nodes  int
	Policy DeclusterPolicy
	chunks []Chunk
	byNode [][]Chunk
}

// Partition splits a dataset into chunks and declusters them over nodes.
func Partition(spec DatasetSpec, nodes int, policy DeclusterPolicy) (*Layout, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("adr: dataset %q needs >= 1 storage node", spec.Name)
	}
	elemsPerChunk := int64(spec.ChunkBytes / spec.ElemBytes)
	totalElems := spec.Elems()
	if totalElems == 0 {
		return nil, fmt.Errorf("adr: dataset %q holds no whole elements", spec.Name)
	}
	nChunks := int((totalElems + elemsPerChunk - 1) / elemsPerChunk)
	l := &Layout{Spec: spec, Nodes: nodes, Policy: policy}
	l.chunks = make([]Chunk, nChunks)
	remaining := totalElems
	for i := range l.chunks {
		e := elemsPerChunk
		if remaining < e {
			e = remaining
		}
		remaining -= e
		l.chunks[i] = Chunk{
			Index: i,
			Elems: e,
			Bytes: units.Bytes(e) * spec.ElemBytes,
		}
	}
	switch policy {
	case RoundRobin:
		for i := range l.chunks {
			l.chunks[i].Home = i % nodes
		}
	case Blocked:
		per := (nChunks + nodes - 1) / nodes
		for i := range l.chunks {
			home := i / per
			if home >= nodes {
				home = nodes - 1
			}
			l.chunks[i].Home = home
		}
	default:
		return nil, fmt.Errorf("adr: unknown decluster policy %v", policy)
	}
	l.byNode = make([][]Chunk, nodes)
	for _, c := range l.chunks {
		l.byNode[c.Home] = append(l.byNode[c.Home], c)
	}
	return l, nil
}

// Chunks returns all chunks in index order.
func (l *Layout) Chunks() []Chunk { return l.chunks }

// NodeChunks returns the chunks held by one storage node, in index order.
func (l *Layout) NodeChunks(node int) []Chunk {
	if node < 0 || node >= l.Nodes {
		return nil
	}
	return l.byNode[node]
}

// NodeBytes reports the data volume held by one storage node.
func (l *Layout) NodeBytes(node int) units.Bytes {
	var total units.Bytes
	for _, c := range l.NodeChunks(node) {
		total += c.Bytes
	}
	return total
}

// MaxNodeBytes reports the largest per-node volume (the retrieval
// critical path).
func (l *Layout) MaxNodeBytes() units.Bytes {
	var max units.Bytes
	for n := 0; n < l.Nodes; n++ {
		if b := l.NodeBytes(n); b > max {
			max = b
		}
	}
	return max
}

// Replica is one copy of a dataset hosted at a repository site.
type Replica struct {
	// Site names the hosting repository (e.g. "osu-repository").
	Site string
	// Cluster identifies the hardware the site runs on.
	Cluster string
	// StorageNodes is the number of data-server nodes at the site.
	StorageNodes int
	// Layout is the chunk layout at this site.
	Layout *Layout
}

// Registry tracks the replicas of each dataset, playing the role of the
// grid replica catalog the paper's resource selection framework consults.
// It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	replicas map[string][]Replica
	version  uint64
}

// NewRegistry returns an empty replica registry.
func NewRegistry() *Registry {
	return &Registry{replicas: make(map[string][]Replica)}
}

// Register adds a replica for its dataset.
func (r *Registry) Register(rep Replica) error {
	if rep.Layout == nil {
		return errors.New("adr: replica without layout")
	}
	if rep.Site == "" {
		return errors.New("adr: replica without site")
	}
	if rep.StorageNodes != rep.Layout.Nodes {
		return fmt.Errorf("adr: replica at %q declares %d nodes but layout has %d",
			rep.Site, rep.StorageNodes, rep.Layout.Nodes)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := rep.Layout.Spec.Name
	for _, existing := range r.replicas[name] {
		if existing.Site == rep.Site {
			return fmt.Errorf("adr: dataset %q already has a replica at %q", name, rep.Site)
		}
	}
	r.replicas[name] = append(r.replicas[name], rep)
	r.version++
	return nil
}

// Version counts successful registrations: a cheap monotonic signal
// consumers (the grid rank engine) use to detect that the replica
// catalog changed without re-reading and comparing its content.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Replicas returns the replicas of a dataset sorted by site name.
func (r *Registry) Replicas(dataset string) []Replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reps := append([]Replica(nil), r.replicas[dataset]...)
	sort.Slice(reps, func(i, j int) bool { return reps[i].Site < reps[j].Site })
	return reps
}

// Datasets lists all registered dataset names, sorted.
func (r *Registry) Datasets() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.replicas))
	for n := range r.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
