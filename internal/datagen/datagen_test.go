package datagen

import (
	"math"
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/units"
)

func spec(kind string, total units.Bytes, elemBytes units.Bytes, dims int) adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "t-" + kind,
		TotalBytes: total,
		ElemBytes:  elemBytes,
		ChunkBytes: 256 * units.KB,
		Kind:       kind,
		Dims:       dims,
		Seed:       42,
	}
}

func TestForKnownKinds(t *testing.T) {
	for _, kind := range []string{"points", "field", "lattice"} {
		if _, err := For(kind); err != nil {
			t.Errorf("For(%q) error: %v", kind, err)
		}
	}
	if _, err := For("bogus"); err == nil {
		t.Error("For(bogus) did not error")
	}
}

func TestChunkValuesDeterministic(t *testing.T) {
	for _, kind := range []string{"points", "field", "lattice"} {
		var s adr.DatasetSpec
		switch kind {
		case "points":
			s = spec(kind, 2*units.MB, 128, 16)
		case "field":
			s = spec(kind, 2*units.MB, 16, 2)
		case "lattice":
			s = spec(kind, 2*units.MB, 24, 3)
		}
		g, err := For(kind)
		if err != nil {
			t.Fatal(err)
		}
		l, err := adr.Partition(s, 2, adr.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		c := l.Chunks()[1]
		a := g.ChunkValues(s, c)
		b := g.ChunkValues(s, c)
		if len(a) != int(c.Elems)*g.FieldsPerElem(s) {
			t.Fatalf("%s: payload length %d, want %d", kind, len(a), int(c.Elems)*g.FieldsPerElem(s))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: chunk values differ at %d on regeneration", kind, i)
			}
		}
	}
}

func TestChunksIndependentOfLayout(t *testing.T) {
	// The same chunk index must yield identical bytes whether the dataset
	// is spread over 1 node or 4 — replicas agree by construction.
	s := spec("points", 2*units.MB, 128, 16)
	g := Points{}
	l1, _ := adr.Partition(s, 1, adr.RoundRobin)
	l4, _ := adr.Partition(s, 4, adr.RoundRobin)
	c1 := l1.Chunks()[3]
	c4 := l4.Chunks()[3]
	a, b := g.ChunkValues(s, c1), g.ChunkValues(s, c4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk 3 differs between layouts at value %d", i)
		}
	}
}

func TestDifferentChunksDiffer(t *testing.T) {
	s := spec("points", 2*units.MB, 128, 16)
	g := Points{}
	l, _ := adr.Partition(s, 1, adr.RoundRobin)
	a := g.ChunkValues(s, l.Chunks()[0])
	b := g.ChunkValues(s, l.Chunks()[1])
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("chunks 0 and 1 produced identical payloads")
	}
}

func TestPointsNearCenters(t *testing.T) {
	s := spec("points", units.MB, 128, 16)
	g := Points{}
	centers := g.Centers(s)
	if len(centers) != MixtureComponents {
		t.Fatalf("got %d centers, want %d", len(centers), MixtureComponents)
	}
	l, _ := adr.Partition(s, 1, adr.RoundRobin)
	vals := g.ChunkValues(s, l.Chunks()[0])
	d := s.Dims
	// Every point must lie close to at least one mixture center.
	for e := 0; e+d <= len(vals); e += d {
		best := math.Inf(1)
		for _, c := range centers {
			sum := 0.0
			for j := 0; j < d; j++ {
				diff := vals[e+j] - c[j]
				sum += diff * diff
			}
			if sum < best {
				best = sum
			}
		}
		// 6 sigma per axis over d dims is a generous envelope.
		if best > float64(d)*math.Pow(6*MixtureSigma, 2) {
			t.Fatalf("point at offset %d is %.1f away from every center", e, math.Sqrt(best))
		}
	}
}

func TestFieldVortexCountScalesWithSize(t *testing.T) {
	g := Field{}
	small := spec("field", units.MB, 16, 2)
	big := spec("field", 4*units.MB, 16, 2)
	ns, nb := len(g.Vortices(small)), len(g.Vortices(big))
	if ns == 0 {
		t.Fatal("small field has no vortices; adjust VortexRowPeriod")
	}
	if nb < 3*ns {
		t.Fatalf("vortex count %d -> %d did not scale with 4x dataset", ns, nb)
	}
}

func TestFieldVorticityConcentratedAtVortex(t *testing.T) {
	g := Field{}
	s := spec("field", units.MB, 16, 2)
	vs := g.Vortices(s)
	if len(vs) == 0 {
		t.Skip("no vortices in tiny dataset")
	}
	vt := vs[0]
	// Central finite-difference vorticity at the vortex center vs far away.
	vort := func(row, col int64) float64 {
		_, vR := g.VelocityAt(s, vs, row, col+1)
		_, vL := g.VelocityAt(s, vs, row, col-1)
		uU, _ := g.VelocityAt(s, vs, row+1, col)
		uD, _ := g.VelocityAt(s, vs, row-1, col)
		return (vR-vL)/2 - (uU-uD)/2
	}
	at := math.Abs(vort(int64(vt.Row), int64(vt.Col)))
	far := math.Abs(vort(int64(vt.Row)+40, 5))
	if at < 4*far+0.01 {
		t.Fatalf("vorticity at vortex %.4f not above background %.4f", at, far)
	}
}

func TestLatticeThermalNoiseBelowThreshold(t *testing.T) {
	g := Lattice{}
	s := spec("lattice", units.MB, 24, 3)
	l, _ := adr.Partition(s, 1, adr.RoundRobin)
	vals := g.ChunkValues(s, l.Chunks()[0])
	defects := map[int64]bool{}
	for _, d := range g.Defects(s) {
		for k := int64(0); k < int64(d.Size); k++ {
			defects[d.FirstAtom+k] = true
		}
	}
	over, defectOver := 0, 0
	for e := int64(0); e*3+2 < int64(len(vals)); e++ {
		ix, iy, iz := g.IdealPosition(s, e)
		dx, dy, dz := vals[e*3]-ix, vals[e*3+1]-iy, vals[e*3+2]-iz
		disp := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if disp > DefectThreshold {
			over++
			if defects[e] {
				defectOver++
			}
		}
	}
	if over != defectOver {
		t.Fatalf("%d atoms above threshold but only %d are injected defects", over, defectOver)
	}
	if defectOver == 0 {
		t.Fatal("no defect atoms above threshold; injection broken")
	}
}

func TestLatticeDefectCountScalesWithSize(t *testing.T) {
	g := Lattice{}
	small := spec("lattice", units.MB, 24, 3)
	big := spec("lattice", 4*units.MB, 24, 3)
	ns, nb := len(g.Defects(small)), len(g.Defects(big))
	if ns == 0 {
		t.Fatal("small lattice has no defects; adjust DefectAtomPeriod")
	}
	if nb < 3*ns {
		t.Fatalf("defect count %d -> %d did not scale with 4x dataset", ns, nb)
	}
}

func TestLatticeDefectSizesBounded(t *testing.T) {
	g := Lattice{}
	s := spec("lattice", 4*units.MB, 24, 3)
	for _, d := range g.Defects(s) {
		if d.Size < 1 || d.Size > MaxDefectSize {
			t.Fatalf("defect size %d out of [1,%d]", d.Size, MaxDefectSize)
		}
	}
}

func TestGlobalBase(t *testing.T) {
	s := spec("points", units.MB, 128, 16)
	l, _ := adr.Partition(s, 1, adr.RoundRobin)
	chunks := l.Chunks()
	var want int64
	for _, c := range chunks {
		if got := GlobalBase(s, c); got != want {
			t.Fatalf("chunk %d base = %d, want %d", c.Index, got, want)
		}
		want += c.Elems
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent (seed, index) pairs must give well-separated RNG seeds.
	seen := map[int64]bool{}
	for seed := int64(0); seed < 10; seed++ {
		for idx := 0; idx < 100; idx++ {
			v := mix(seed, idx)
			if seen[v] {
				t.Fatalf("mix collision at seed=%d idx=%d", seed, idx)
			}
			seen[v] = true
		}
	}
}
