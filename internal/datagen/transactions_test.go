package datagen

import (
	"testing"

	"freerideg/internal/adr"
	"freerideg/internal/units"
)

func txSpec() adr.DatasetSpec {
	return adr.DatasetSpec{
		Name:       "tx",
		TotalBytes: units.MB,
		ElemBytes:  96, // 12 slots
		ChunkBytes: 96 * units.KB,
		Kind:       "transactions",
		Dims:       12,
		Seed:       19,
	}
}

func TestTransactionsDeterministic(t *testing.T) {
	spec := txSpec()
	g := Transactions{}
	l, err := adr.Partition(spec, 1, adr.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	c := l.Chunks()[0]
	a, b := g.ChunkValues(spec, c), g.ChunkValues(spec, c)
	if len(a) != int(c.Elems)*spec.Dims {
		t.Fatalf("payload length %d, want %d", len(a), int(c.Elems)*spec.Dims)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("values differ at %d on regeneration", i)
		}
	}
}

func TestTransactionsItemIDsInCatalog(t *testing.T) {
	spec := txSpec()
	g := Transactions{}
	l, _ := adr.Partition(spec, 1, adr.RoundRobin)
	vals := g.ChunkValues(spec, l.Chunks()[0])
	for i, v := range vals {
		id := int(v)
		if float64(id) != v || id < 1 || id > TransactionItems {
			t.Fatalf("slot %d holds %v, want integer item ID in [1,%d]", i, v, TransactionItems)
		}
	}
}

func TestTransactionsPatternsWellFormed(t *testing.T) {
	spec := txSpec()
	patterns := Transactions{}.Patterns(spec)
	if len(patterns) != 3 {
		t.Fatalf("%d patterns, want 3", len(patterns))
	}
	seen := map[int]bool{}
	for _, p := range patterns {
		for i, item := range p {
			if item < 1 || item >= transactionTailStart {
				t.Errorf("pattern item %d outside planted range", item)
			}
			if seen[item] {
				t.Errorf("item %d appears in two patterns", item)
			}
			seen[item] = true
			if i > 0 && p[i] <= p[i-1] {
				t.Errorf("pattern %v not sorted ascending", p)
			}
		}
	}
}

func TestTransactionsPatternFrequency(t *testing.T) {
	spec := txSpec()
	g := Transactions{}
	l, _ := adr.Partition(spec, 1, adr.RoundRobin)
	patterns := g.Patterns(spec)
	counts := make([]int64, len(patterns))
	var total int64
	for _, c := range l.Chunks() {
		vals := g.ChunkValues(spec, c)
		for e := int64(0); e < c.Elems; e++ {
			tx := vals[e*int64(spec.Dims) : (e+1)*int64(spec.Dims)]
			present := map[int]bool{}
			for _, v := range tx {
				present[int(v)] = true
			}
			for pi, p := range patterns {
				hit := true
				for _, item := range p {
					if !present[item] {
						hit = false
						break
					}
				}
				if hit {
					counts[pi]++
				}
			}
			total++
		}
	}
	for pi, n := range counts {
		share := float64(n) / float64(total)
		// Patterns rotate over 3 with 90% inclusion: ~30% each.
		if share < 0.2 || share > 0.4 {
			t.Errorf("pattern %d support share %.2f outside [0.2,0.4]", pi, share)
		}
	}
}
