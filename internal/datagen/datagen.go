// Package datagen produces the synthetic datasets the five applications
// mine. Every chunk of a dataset is generated independently and
// deterministically from (dataset seed, chunk index), so any storage node,
// compute node, or test can materialize exactly the same bytes without a
// central copy — the repository never has to hold gigabytes on disk.
//
// Three kinds are provided, matching the paper's workloads:
//
//   - "points":  d-dimensional points drawn from a Gaussian mixture
//     (k-means, EM, kNN);
//   - "field":   a 2-D fluid velocity field with embedded Rankine-style
//     vortices (vortex detection);
//   - "lattice": a cubic Si-like lattice with thermal noise and injected
//     defect clusters (molecular defect detection).
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"freerideg/internal/adr"
)

// Generator materializes chunk payloads for one dataset kind.
type Generator interface {
	// FieldsPerElem reports how many float64 values one element carries.
	FieldsPerElem(spec adr.DatasetSpec) int
	// ChunkValues returns the chunk payload as a flat, element-major
	// []float64 of length c.Elems * FieldsPerElem.
	ChunkValues(spec adr.DatasetSpec, c adr.Chunk) []float64
}

// RangeGenerator is a Generator that can materialize arbitrary element
// ranges, not just whole chunks. Analytic generators (the field) support
// it; stream-seeded generators do not.
type RangeGenerator interface {
	Generator
	// RangeValues returns elements [from, to) as a flat []float64.
	RangeValues(spec adr.DatasetSpec, from, to int64) []float64
}

// HaloFor materializes the overlap ranges around a chunk for kernels that
// request overlapping partitions. Halos are clipped at the dataset edges.
// It returns an error when the dataset kind cannot generate ranges.
func HaloFor(gen Generator, spec adr.DatasetSpec, c adr.Chunk, overlap int64) (before, after []float64, err error) {
	if overlap <= 0 {
		return nil, nil, nil
	}
	rg, ok := gen.(RangeGenerator)
	if !ok {
		return nil, nil, fmt.Errorf("datagen: kind %q cannot generate overlap ranges", spec.Kind)
	}
	base := GlobalBase(spec, c)
	end := base + c.Elems
	total := spec.Elems()
	from := base - overlap
	if from < 0 {
		from = 0
	}
	to := end + overlap
	if to > total {
		to = total
	}
	if from < base {
		before = rg.RangeValues(spec, from, base)
	}
	if to > end {
		after = rg.RangeValues(spec, end, to)
	}
	return before, after, nil
}

// For selects the generator for a dataset kind.
func For(kind string) (Generator, error) {
	switch kind {
	case "points":
		return Points{}, nil
	case "field":
		return Field{}, nil
	case "lattice":
		return Lattice{}, nil
	case "transactions":
		return Transactions{}, nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset kind %q", kind)
}

// mix derives a per-chunk RNG seed from the dataset seed and chunk index
// (splitmix64 finalizer).
func mix(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func chunkRNG(spec adr.DatasetSpec, idx int) *rand.Rand {
	return rand.New(rand.NewSource(mix(spec.Seed, idx)))
}

// elemsPerFullChunk reports how many elements a non-final chunk holds.
func elemsPerFullChunk(spec adr.DatasetSpec) int64 {
	return int64(spec.ChunkBytes / spec.ElemBytes)
}

// GlobalBase reports the dataset-wide index of a chunk's first element.
func GlobalBase(spec adr.DatasetSpec, c adr.Chunk) int64 {
	return int64(c.Index) * elemsPerFullChunk(spec)
}

// ----------------------------------------------------------------------
// Points: Gaussian mixture in d dimensions.

// Points generates clustering data: each element is a d-dimensional point
// drawn from one of MixtureComponents Gaussian components.
type Points struct{}

// MixtureComponents is the number of Gaussian components in every points
// dataset. Clustering apps may look for a different k; the ground truth
// is fixed so tests can check recovery.
const MixtureComponents = 8

// MixtureSigma is the per-axis standard deviation of each component.
const MixtureSigma = 2.0

// FieldsPerElem returns the point dimensionality.
func (Points) FieldsPerElem(spec adr.DatasetSpec) int { return spec.Dims }

// Centers returns the ground-truth component centers for a dataset.
func (Points) Centers(spec adr.DatasetSpec) [][]float64 {
	rng := rand.New(rand.NewSource(mix(spec.Seed, -1)))
	centers := make([][]float64, MixtureComponents)
	for g := range centers {
		c := make([]float64, spec.Dims)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[g] = c
	}
	return centers
}

// ChunkValues draws the chunk's points from the mixture.
func (p Points) ChunkValues(spec adr.DatasetSpec, c adr.Chunk) []float64 {
	rng := chunkRNG(spec, c.Index)
	centers := p.Centers(spec)
	d := spec.Dims
	out := make([]float64, c.Elems*int64(d))
	for e := int64(0); e < c.Elems; e++ {
		g := rng.Intn(MixtureComponents)
		base := e * int64(d)
		for j := 0; j < d; j++ {
			out[base+int64(j)] = centers[g][j] + rng.NormFloat64()*MixtureSigma
		}
	}
	return out
}

// ----------------------------------------------------------------------
// Field: 2-D velocity field with embedded vortices.

// Field generates CFD-like data: the dataset is a 2-D grid of velocity
// vectors (u, v), row-major, FieldWidth cells per row. A background shear
// flow is perturbed by Taylor-profile vortices placed deterministically,
// one per VortexRowPeriod rows. The Taylor profile
//
//	v_θ(d) = V · (d/r) · exp((1 − (d/r)²)/2)
//
// has vorticity ω(0) = 2e^½·V/r concentrated in the core and a weak
// opposite-sign annulus peaking at |ω| ≈ 0.45·V/r, so a detection
// threshold between the two bands marks exactly one connected disc per
// vortex.
type Field struct{}

// FieldWidth is the number of grid columns in every field dataset.
const FieldWidth = 256

// VortexRowPeriod controls vortex density: one vortex is injected per this
// many grid rows, so the feature count grows linearly with dataset size.
const VortexRowPeriod = 96

// FieldsPerElem returns 2 (u and v velocity components).
func (Field) FieldsPerElem(adr.DatasetSpec) int { return 2 }

// VortexTruth is the ground-truth description of one injected vortex.
type VortexTruth struct {
	Row, Col float64 // center
	Radius   float64
	Strength float64 // peak tangential speed; sign gives rotation sense
}

// Rows reports the number of grid rows the dataset holds.
func (Field) Rows(spec adr.DatasetSpec) int64 {
	return spec.Elems() / FieldWidth
}

// Vortices returns the ground-truth vortices of a dataset.
func (f Field) Vortices(spec adr.DatasetSpec) []VortexTruth {
	rows := f.Rows(spec)
	n := int(rows / VortexRowPeriod)
	rng := rand.New(rand.NewSource(mix(spec.Seed, -2)))
	out := make([]VortexTruth, n)
	for i := range out {
		band := float64(i) * VortexRowPeriod
		// Radius 6..9 and strength 1.5..2.5 keep every vortex's core
		// vorticity (≥ 2e^½·1.5/9 ≈ 0.55) well above the annulus band
		// (≤ 0.45·2.5/6 ≈ 0.19) so one global threshold separates them.
		out[i] = VortexTruth{
			Row:      band + 16 + rng.Float64()*(VortexRowPeriod-32),
			Col:      20 + rng.Float64()*(FieldWidth-40),
			Radius:   6 + rng.Float64()*3,
			Strength: (1.5 + rng.Float64()) * sign(rng),
		}
	}
	return out
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// VelocityAt evaluates the analytic field at grid cell (row, col):
// a weak background shear plus the superposition of nearby vortices.
func (f Field) VelocityAt(spec adr.DatasetSpec, vortices []VortexTruth, row, col int64) (u, v float64) {
	u = 0.05 * float64(col) / FieldWidth // background shear
	v = 0
	for _, vt := range vortices {
		dr := float64(row) - vt.Row
		dc := float64(col) - vt.Col
		dist := math.Hypot(dr, dc)
		// The Taylor profile decays like x·e^(-x²/2); at 4 radii the
		// residual speed is ~2e-3 of the peak, small enough to truncate
		// without a detectable vorticity jump.
		if dist > 4*vt.Radius || dist == 0 {
			continue
		}
		x := dist / vt.Radius
		speed := vt.Strength * x * math.Exp((1-x*x)/2)
		// Tangential direction: rotate the radial vector (dc, dr) by 90
		// degrees, with u along columns and v along rows.
		u += speed * (-dr / dist)
		v += speed * (dc / dist)
	}
	return u, v
}

// ChunkValues evaluates the analytic field over the chunk's cells.
func (f Field) ChunkValues(spec adr.DatasetSpec, c adr.Chunk) []float64 {
	return f.RangeValues(spec, GlobalBase(spec, c), GlobalBase(spec, c)+c.Elems)
}

// RangeValues evaluates the analytic field over an arbitrary cell range,
// enabling overlapping partitions.
func (f Field) RangeValues(spec adr.DatasetSpec, from, to int64) []float64 {
	vortices := f.Vortices(spec)
	out := make([]float64, (to-from)*2)
	for idx := from; idx < to; idx++ {
		row := idx / FieldWidth
		col := idx % FieldWidth
		u, v := f.VelocityAt(spec, vortices, row, col)
		out[(idx-from)*2] = u
		out[(idx-from)*2+1] = v
	}
	return out
}

var _ RangeGenerator = Field{}

// ----------------------------------------------------------------------
// Lattice: cubic lattice with thermal noise and defect clusters.

// Lattice generates molecular-dynamics-like data: atoms sit near the sites
// of a simple cubic lattice with spacing LatticeSpacing, perturbed by
// thermal noise well below the defect threshold. Defect clusters — groups
// of strongly displaced atoms — are injected once per DefectAtomPeriod
// atoms, so the defect count grows linearly with dataset size.
type Lattice struct{}

// LatticeSpacing is the ideal lattice constant.
const LatticeSpacing = 2.0

// ThermalSigma is the thermal displacement standard deviation.
const ThermalSigma = 0.05

// DefectThreshold is the displacement above which an atom is anomalous.
const DefectThreshold = 0.4

// DefectAtomPeriod controls defect density: one defect cluster per this
// many atoms.
const DefectAtomPeriod = 8192

// MaxDefectSize is the largest injected cluster (atoms per defect);
// cluster sizes cycle deterministically from 1 to MaxDefectSize, giving
// the categorization phase a bounded class catalog.
const MaxDefectSize = 5

// FieldsPerElem returns 3 (x, y, z atom position).
func (Lattice) FieldsPerElem(adr.DatasetSpec) int { return 3 }

// DefectTruth describes one injected defect cluster.
type DefectTruth struct {
	FirstAtom int64 // global index of the cluster's first displaced atom
	Size      int   // number of consecutive displaced atoms
}

// Defects returns the ground-truth injected defects. A cluster whose atoms
// extend past the end of the dataset is truncated, matching what the
// generator actually materializes.
func (Lattice) Defects(spec adr.DatasetSpec) []DefectTruth {
	atoms := spec.Elems()
	var out []DefectTruth
	for i := int64(0); ; i++ {
		first := i*DefectAtomPeriod + 100
		if first >= atoms {
			break
		}
		size := int(i)%MaxDefectSize + 1
		if first+int64(size) > atoms {
			size = int(atoms - first)
		}
		out = append(out, DefectTruth{FirstAtom: first, Size: size})
	}
	return out
}

// Side reports the cubic lattice side length (in sites) that holds all
// atoms.
func (Lattice) Side(spec adr.DatasetSpec) int64 {
	atoms := spec.Elems()
	side := int64(math.Cbrt(float64(atoms)))
	for side*side*side < atoms {
		side++
	}
	return side
}

// IdealPosition reports the ideal lattice site of an atom.
func (l Lattice) IdealPosition(spec adr.DatasetSpec, idx int64) (x, y, z float64) {
	side := l.Side(spec)
	x = float64(idx%side) * LatticeSpacing
	y = float64((idx/side)%side) * LatticeSpacing
	z = float64(idx/(side*side)) * LatticeSpacing
	return
}

// displacementFor reports the injected defect displacement for an atom, or
// 0 if the atom is not part of a defect. Displacements are derived purely
// from the atom index so chunk generation stays independent.
func displacementFor(idx int64) float64 {
	period := int64(DefectAtomPeriod)
	cluster := idx / period
	first := cluster*period + 100
	size := int64(cluster)%MaxDefectSize + 1
	if idx >= first && idx < first+size {
		return DefectThreshold * 2.5
	}
	return 0
}

// ChunkValues generates atom positions for the chunk.
func (l Lattice) ChunkValues(spec adr.DatasetSpec, c adr.Chunk) []float64 {
	rng := chunkRNG(spec, c.Index)
	base := GlobalBase(spec, c)
	out := make([]float64, c.Elems*3)
	for e := int64(0); e < c.Elems; e++ {
		idx := base + e
		x, y, z := l.IdealPosition(spec, idx)
		x += rng.NormFloat64() * ThermalSigma
		y += rng.NormFloat64() * ThermalSigma
		z += rng.NormFloat64() * ThermalSigma
		if d := displacementFor(idx); d != 0 {
			// Displace along a fixed diagonal so the magnitude is exact.
			x += d / math.Sqrt(3)
			y += d / math.Sqrt(3)
			z += d / math.Sqrt(3)
		}
		out[e*3] = x
		out[e*3+1] = y
		out[e*3+2] = z
	}
	return out
}
