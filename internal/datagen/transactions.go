package datagen

import (
	"math/rand"

	"freerideg/internal/adr"
)

// Transactions generates market-basket data for association mining
// (apriori is the first example of the paper's generalized-reduction
// application class, Section 2.2). Each element is one transaction of
// spec.Dims item slots holding item IDs (0 = empty slot). A few frequent
// itemsets are planted so mining has ground truth; the remaining slots
// are filled from a long tail of individually infrequent items.
type Transactions struct{}

// TransactionItems is the catalog size; item IDs run 1..TransactionItems.
const TransactionItems = 200

// transactionTailStart is the first tail (non-planted) item ID.
const transactionTailStart = 51

// PatternProbability is the chance a transaction contains one of the
// planted patterns (patterns rotate per transaction index).
const PatternProbability = 0.9

// FieldsPerElem returns the transaction width (item slots).
func (Transactions) FieldsPerElem(spec adr.DatasetSpec) int { return spec.Dims }

// Patterns returns the planted frequent itemsets, sorted ascending.
// Pattern p is included (whole) in roughly PatternProbability/len share
// of transactions, far above the tail items' individual frequency.
func (Transactions) Patterns(spec adr.DatasetSpec) [][]int {
	rng := rand.New(rand.NewSource(mix(spec.Seed, -3)))
	sizes := []int{3, 4, 5}
	patterns := make([][]int, len(sizes))
	used := map[int]bool{}
	for i, size := range sizes {
		p := make([]int, 0, size)
		for len(p) < size {
			item := 1 + rng.Intn(transactionTailStart-1)
			if !used[item] {
				used[item] = true
				p = append(p, item)
			}
		}
		sortInts(p)
		patterns[i] = p
	}
	return patterns
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ChunkValues generates the chunk's transactions.
func (tr Transactions) ChunkValues(spec adr.DatasetSpec, c adr.Chunk) []float64 {
	rng := chunkRNG(spec, c.Index)
	patterns := tr.Patterns(spec)
	w := spec.Dims
	base := GlobalBase(spec, c)
	out := make([]float64, c.Elems*int64(w))
	for e := int64(0); e < c.Elems; e++ {
		tx := out[e*int64(w) : (e+1)*int64(w)]
		slot := 0
		if rng.Float64() < PatternProbability {
			p := patterns[int(base+e)%len(patterns)]
			for _, item := range p {
				if slot < w {
					tx[slot] = float64(item)
					slot++
				}
			}
		}
		// Fill remaining slots from the long tail of infrequent items.
		for ; slot < w; slot++ {
			tx[slot] = float64(transactionTailStart + rng.Intn(TransactionItems-transactionTailStart+1))
		}
	}
	return out
}
