// Quickstart: run a data mining application on the FREERIDE-G middleware
// for real (goroutine backend), collect its profile, and use the
// prediction framework to estimate how the same run would behave with
// more compute nodes — then check the estimate against a real run.
package main

import (
	"fmt"
	"log"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps/kmeans"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/units"
)

func main() {
	// A small Gaussian-mixture dataset, generated deterministically chunk
	// by chunk — no files needed.
	spec := adr.DatasetSpec{
		Name:       "quickstart-points",
		TotalBytes: 8 * units.MB,
		ElemBytes:  128, // 16 dimensions x 8 bytes
		ChunkBytes: 256 * units.KB,
		Kind:       "points",
		Dims:       16,
		Seed:       2026,
	}

	// 1. Run k-means for real on 1 data server and 1 compute goroutine.
	kern, err := kmeans.New(spec, kmeans.Params{K: 16, MaxIter: 8, Epsilon: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	res1, err := middleware.RunLocal(kern, spec, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-1 run: %v over %d passes (t_d=%v t_n=%v t_c=%v)\n",
		res1.Elapsed.Round(time.Millisecond), res1.Iterations,
		res1.Profile.Tdisk.Round(time.Millisecond),
		res1.Profile.Tnetwork.Round(time.Millisecond),
		res1.Profile.Tcompute.Round(time.Millisecond))
	fmt.Printf("first center after clustering: %.1f ...\n", kern.Centers()[0][:4])

	// 2. Seed the prediction framework with the 1-1 profile and predict a
	// 1-4 run (same data, four compute goroutines).
	pred, err := core.NewPredictor(res1.Profile, kmeans.Model())
	if err != nil {
		log.Fatal(err)
	}
	// In-process "interconnect": calibrate with a nominal memory-speed
	// link so the reduction-communication terms stay tiny, as they are in
	// a shared-memory run.
	pred.Links[middleware.LocalCluster] = core.LinkCalibration{W: 1e-9, L: 50 * time.Microsecond}

	target := res1.Profile.Config
	target.ComputeNodes = 4
	p, err := pred.Predict(target, core.GlobalReduction)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted 1-4 T_exec: %v\n", p.Texec().Round(time.Millisecond))

	// 3. Run 1-4 for real and compare.
	kern2, err := kmeans.New(spec, kmeans.Params{K: 16, MaxIter: 8, Epsilon: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	res4, err := middleware.RunLocal(kern2, spec, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual    1-4 T_exec: %v\n", res4.Profile.Texec().Round(time.Millisecond))
	fmt.Println("(real wall-clock runs are noisy; the paper's evaluation uses the")
	fmt.Println(" simulated testbed — see cmd/fgexperiments)")
}
