// Diagnostics: operating the prediction framework in the wild. Before
// trusting the simple model, a deployment should (1) estimate the
// effective bandwidth of each repository path from observed transfers —
// the b̂ the paper obtains from wide-area transfer prediction services —
// and (2) check the model's scaling assumptions against a few profile
// runs. This example does both against the simulated testbed, including
// one deliberately hostile environment that trips the checks.
package main

import (
	"fmt"
	"log"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/middleware"
	"freerideg/internal/units"
)

func main() {
	h, err := bench.NewHarness()
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: bandwidth estimation from observed transfers.
	fmt.Println("== bandwidth estimation")
	est := grid.NewBandwidthEstimator(0)
	// Observed chunk deliveries on two repository paths (elapsed =
	// latency + bytes/bandwidth, as a transfer log would record).
	for _, mb := range []units.Bytes{2, 8, 32, 64} {
		obs := func(site string, bw units.Rate, lat time.Duration) {
			s := grid.TransferSample{Bytes: mb * units.MB, Elapsed: lat + bw.TransferTime(mb*units.MB)}
			if err := est.Observe(site, bench.PentiumCluster, s); err != nil {
				log.Fatal(err)
			}
		}
		obs("campus", 95*units.MBPerSec, 2*time.Millisecond)
		obs("wide-area", 11*units.MBPerSec, 40*time.Millisecond)
	}
	for _, site := range []string{"campus", "wide-area"} {
		bw, lat, err := est.Estimate(site, bench.PentiumCluster)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s b̂ = %v, latency %v\n", site, bw, lat.Round(time.Millisecond))
	}

	// --- Part 2: assumption checks on a healthy testbed.
	fmt.Println("\n== assumption checks (healthy cluster)")
	profiles := collect(h, middleware.SimOptions{})
	warnings, err := core.CheckAssumptions(profiles)
	if err != nil {
		log.Fatal(err)
	}
	if len(warnings) == 0 {
		fmt.Println("  all scaling assumptions hold")
	}
	for _, w := range warnings {
		fmt.Println("  WARNING", w)
	}

	// --- Part 3: the same checks against a hostile environment — a
	// repository whose backplane saturates (heavy DiskAlpha), so adding
	// storage nodes barely helps. The checks flag it and point at the
	// paper's remedy.
	fmt.Println("\n== assumption checks (contended repository)")
	contended := middleware.PentiumMyrinet()
	contended.Name = "contended-repository"
	contended.DiskAlpha = 0.8
	hostileGrid, err := middleware.NewGrid(contended)
	if err != nil {
		log.Fatal(err)
	}
	hostile := collectOn(hostileGrid, contended.Name)
	warnings, err = core.CheckAssumptions(hostile)
	if err != nil {
		log.Fatal(err)
	}
	if len(warnings) == 0 {
		fmt.Println("  (no warnings)")
	}
	for _, w := range warnings {
		fmt.Println("  WARNING", w)
	}

	// --- Part 4: the structured event layer. Attach a Collector to one
	// run to get the per-phase time decomposition the event trace carries;
	// its aggregation equals the profile's (t_d, t_n, t_c) exactly, so a
	// deployment can reconcile its observability pipeline against the
	// reported breakdown.
	fmt.Println("\n== event-layer phase decomposition (kmeans, 2-4, 256 MB)")
	a, err := apps.Get("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.DatasetChunked("kmeans", 256*units.MB, bench.ChunkFor(256*units.MB))
	if err != nil {
		log.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		log.Fatal(err)
	}
	col := middleware.NewCollector()
	res, err := h.Grid().SimulateOpts(cost, spec, core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    2,
		ComputeNodes: 4,
		Bandwidth:    middleware.DefaultBandwidth,
		DatasetBytes: 256 * units.MB,
	}, middleware.SimOptions{Trace: col})
	if err != nil {
		log.Fatal(err)
	}
	for _, ph := range []middleware.Phase{
		middleware.PhaseRetrieval, middleware.PhaseDelivery, middleware.PhaseCachedFetch,
		middleware.PhaseLocalReduce, middleware.PhaseGather, middleware.PhaseGlobalReduce,
		middleware.PhaseSync, middleware.PhaseBroadcast,
	} {
		if d := col.PhaseTotal(ph); d > 0 {
			fmt.Printf("  %-13s %v\n", ph, d.Round(time.Millisecond))
		}
	}
	bd := col.Breakdown()
	fmt.Printf("  trace totals  t_d=%v t_n=%v t_c=%v (reconciles with profile: %v)\n",
		bd.Tdisk.Round(time.Millisecond), bd.Tnetwork.Round(time.Millisecond),
		bd.Tcompute.Round(time.Millisecond), bd == res.Profile.Breakdown)
}

// collect runs kmeans profiles over a small configuration sweep on the
// harness's healthy testbed.
func collect(h *bench.Harness, opts middleware.SimOptions) []core.Profile {
	return sweep(h.Grid(), bench.PentiumCluster, opts)
}

// collectOn runs the same sweep on an arbitrary grid/cluster.
func collectOn(g *middleware.Grid, cluster string) []core.Profile {
	return sweep(g, cluster, middleware.SimOptions{})
}

func sweep(g *middleware.Grid, cluster string, opts middleware.SimOptions) []core.Profile {
	const app = "kmeans"
	a, err := apps.Get(app)
	if err != nil {
		log.Fatal(err)
	}
	var out []core.Profile
	for _, run := range []struct {
		n, c  int
		bytes units.Bytes
	}{
		{1, 2, 128 * units.MB},
		{1, 2, 256 * units.MB},
		{2, 2, 128 * units.MB},
		{8, 8, 128 * units.MB},
	} {
		spec, err := bench.DatasetChunked(app, run.bytes, bench.ChunkFor(128*units.MB))
		if err != nil {
			log.Fatal(err)
		}
		cost, err := a.Cost(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.Config{
			Cluster:      cluster,
			DataNodes:    run.n,
			ComputeNodes: run.c,
			Bandwidth:    middleware.DefaultBandwidth,
			DatasetBytes: run.bytes,
		}
		res, err := g.SimulateOpts(cost, spec, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, res.Profile)
	}
	return out
}
