// Replica selection: the scenario from the paper's introduction. A
// scientific dataset is replicated at two repository sites with different
// storage parallelism and different bandwidth to the compute cluster; the
// middleware must pick the replica and compute configuration that finish
// a vortex-detection analysis soonest.
//
// A retrieval-heavy single-pass application prefers the wide replica even
// over a slower link once enough compute nodes are available; the ranking
// below shows the crossover.
package main

import (
	"fmt"
	"log"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/grid"
	"freerideg/internal/units"
)

func main() {
	const app = "vortex"
	total := 710 * units.MB

	h, err := bench.NewHarness()
	if err != nil {
		log.Fatal(err)
	}
	a, err := apps.Get(app)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.Dataset(app, total)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the application once on a minimal configuration.
	baseCfg := core.Config{
		Cluster:      bench.PentiumCluster,
		DataNodes:    1,
		ComputeNodes: 1,
		Bandwidth:    100 * units.MBPerSec,
		DatasetBytes: total,
	}
	base, err := h.Grid().Simulate(cost, spec, baseCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base profile: %v — t_d=%v, t_n=%v, t_c=%v\n",
		baseCfg, base.Profile.Tdisk.Round(time.Millisecond),
		base.Profile.Tnetwork.Round(time.Millisecond),
		base.Profile.Tcompute.Round(time.Millisecond))

	pred, err := core.NewPredictor(base.Profile, a.Model)
	if err != nil {
		log.Fatal(err)
	}
	for cl, cal := range h.Links() {
		pred.Links[cl] = cal
	}

	// The grid information service knows two replicas and several offers.
	svc := grid.NewService()
	sites := []struct {
		name  string
		nodes int
		bw    units.Rate
	}{
		{"campus-repository", 2, 100 * units.MBPerSec}, // near, narrow
		{"national-archive", 8, 40 * units.MBPerSec},   // far, wide
	}
	for _, s := range sites {
		layout, err := adr.Partition(spec, s.nodes, adr.RoundRobin)
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.Replicas.Register(adr.Replica{
			Site: s.name, Cluster: bench.PentiumCluster,
			StorageNodes: s.nodes, Layout: layout,
		}); err != nil {
			log.Fatal(err)
		}
		if err := svc.SetBandwidth(s.name, bench.PentiumCluster, s.bw); err != nil {
			log.Fatal(err)
		}
	}
	for _, nodes := range []int{2, 8, 16} {
		if err := svc.AddOffer(grid.ComputeOffer{Cluster: bench.PentiumCluster, Nodes: nodes}); err != nil {
			log.Fatal(err)
		}
	}

	sel := &grid.Selector{Predictor: pred, Variant: core.GlobalReduction}
	ranked, err := sel.Rank(svc, spec.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked (replica, configuration) pairs:")
	for i, cand := range ranked {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %-18s %d storage, %2d compute @ %-11v predicted %v\n",
			marker, cand.Replica.Site, cand.Config.DataNodes,
			cand.Config.ComputeNodes, cand.Config.Bandwidth,
			cand.Prediction.Texec().Round(time.Millisecond))
	}

	// Validate the choice against the simulated ground truth.
	best := ranked[0]
	actual, err := h.Grid().Simulate(cost, spec, best.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected %s; predicted %v, actual %v\n",
		best.Replica.Site,
		best.Prediction.Texec().Round(time.Millisecond),
		actual.Makespan.Round(time.Millisecond))
}
