// Cross-cluster prediction (paper Section 3.4): a molecular defect
// detection profile is collected on the 700 MHz Pentium/Myrinet cluster,
// component scaling factors to the 2.4 GHz Opteron/Infiniband cluster are
// measured with three representative applications, and execution times on
// the Opteron cluster are predicted without ever profiling defect
// detection there.
package main

import (
	"fmt"
	"log"
	"time"

	"freerideg/internal/apps"
	"freerideg/internal/bench"
	"freerideg/internal/core"
	"freerideg/internal/stats"
	"freerideg/internal/units"
)

func main() {
	h, err := bench.NewHarness()
	if err != nil {
		log.Fatal(err)
	}
	const app = "defect"
	total := 130 * units.MB

	a, err := apps.Get(app)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.Dataset(app, total)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := a.Cost(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile defect detection on the Pentium cluster.
	mk := func(cluster string, n, c int) core.Config {
		return core.Config{
			Cluster: cluster, DataNodes: n, ComputeNodes: c,
			Bandwidth: 100 * units.MBPerSec, DatasetBytes: total,
		}
	}
	base, err := h.Grid().Simulate(cost, spec, mk(bench.PentiumCluster, 4, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base profile on %s: T_exec %v\n",
		bench.PentiumCluster, base.Profile.Texec().Round(time.Millisecond))

	// 2. Measure scaling factors with three representative applications
	// run on identical configurations on both clusters.
	var onA, onB []core.Profile
	for _, rep := range []string{"kmeans", "knn", "em"} {
		ra, err := apps.Get(rep)
		if err != nil {
			log.Fatal(err)
		}
		rspec, err := bench.Dataset(rep, 256*units.MB)
		if err != nil {
			log.Fatal(err)
		}
		rcost, err := ra.Cost(rspec)
		if err != nil {
			log.Fatal(err)
		}
		for _, cluster := range []string{bench.PentiumCluster, bench.OpteronCluster} {
			cfg := core.Config{
				Cluster: cluster, DataNodes: 4, ComputeNodes: 4,
				Bandwidth: 100 * units.MBPerSec, DatasetBytes: rspec.TotalBytes,
			}
			res, err := h.Grid().Simulate(rcost, rspec, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if cluster == bench.PentiumCluster {
				onA = append(onA, res.Profile)
			} else {
				onB = append(onB, res.Profile)
			}
		}
	}
	scaling, err := core.ComputeScaling(onA, onB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaling factors Pentium -> Opteron: s_d=%.3f s_n=%.3f s_c=%.3f\n",
		scaling.Disk, scaling.Network, scaling.Compute)

	// 3. Predict Opteron configurations and compare with simulated truth.
	pred, err := core.NewPredictor(base.Profile, a.Model)
	if err != nil {
		log.Fatal(err)
	}
	for cl, cal := range h.Links() {
		pred.Links[cl] = cal
	}
	pred.Scalings[bench.OpteronCluster] = scaling

	fmt.Println("\npredictions on the Opteron cluster (never profiled there):")
	for _, nc := range [][2]int{{1, 1}, {2, 4}, {4, 4}, {4, 16}, {8, 16}} {
		cfg := mk(bench.OpteronCluster, nc[0], nc[1])
		p, err := pred.Predict(cfg, core.GlobalReduction)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := h.Grid().Simulate(cost, spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := stats.RelError(actual.Makespan.Seconds(), p.Texec().Seconds())
		fmt.Printf("  %d-%-2d predicted %-10v actual %-10v error %5.2f%%\n",
			nc[0], nc[1],
			p.Texec().Round(time.Millisecond),
			actual.Makespan.Round(time.Millisecond), 100*e)
	}
}
