// Custom mining application: what a FREERIDE-G user writes. The paper's
// API asks for exactly three things — a reduction object, a local
// reduction, and a global reduction — and the middleware handles data
// retrieval, distribution, caching, and parallelization.
//
// The application below mines a per-dimension histogram (a data-profiling
// primitive) over a points dataset, runs it on the real goroutine backend,
// and then attaches a cost model so the same application can be scheduled
// with the prediction framework on the simulated testbed.
package main

import (
	"fmt"
	"log"
	"time"

	"freerideg/internal/adr"
	"freerideg/internal/core"
	"freerideg/internal/middleware"
	"freerideg/internal/reduction"
	"freerideg/internal/units"
)

// histogramKernel implements reduction.Kernel.
type histogramKernel struct {
	dims, bins int
	lo, hi     float64
	result     []float64
}

func (h *histogramKernel) Name() string    { return "histogram" }
func (h *histogramKernel) Iterations() int { return 1 }

// NewObject: one counter vector per dimension — a constant-size,
// associatively mergeable reduction object.
func (h *histogramKernel) NewObject() reduction.Object {
	return reduction.NewVectorObject(h.dims * h.bins)
}

// ProcessChunk: the local reduction. Each element updates bin counters
// with a commutative add — the generalized-reduction contract.
func (h *histogramKernel) ProcessChunk(p reduction.Payload, obj reduction.Object) error {
	acc := obj.(*reduction.VectorObject)
	if err := p.Validate(); err != nil {
		return err
	}
	width := (h.hi - h.lo) / float64(h.bins)
	for e := int64(0); e < p.Chunk.Elems; e++ {
		pt := p.Elem(e)
		for d := 0; d < h.dims && d < len(pt); d++ {
			bin := int((pt[d] - h.lo) / width)
			if bin < 0 {
				bin = 0
			}
			if bin >= h.bins {
				bin = h.bins - 1
			}
			acc.V[d*h.bins+bin]++
		}
	}
	return nil
}

// GlobalReduce: consume the merged object.
func (h *histogramKernel) GlobalReduce(merged reduction.Object) (bool, error) {
	h.result = merged.(*reduction.VectorObject).V
	return true, nil
}

func main() {
	spec := adr.DatasetSpec{
		Name:       "custom-points",
		TotalBytes: 8 * units.MB,
		ElemBytes:  128,
		ChunkBytes: 256 * units.KB,
		Kind:       "points",
		Dims:       16,
		Seed:       99,
	}
	kern := &histogramKernel{dims: 16, bins: 20, lo: -10, hi: 110}

	// Run it for real across 2 data servers and 4 compute goroutines.
	res, err := middleware.RunLocal(kern, spec, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram over %v in %v (%d-node reduction object: %v)\n",
		spec.TotalBytes, res.Elapsed.Round(time.Millisecond), 4, res.Profile.ROBytesPerNode)
	fmt.Print("dimension 0: ")
	var total float64
	for _, c := range kern.result[:kern.bins] {
		total += c
	}
	for _, c := range kern.result[:kern.bins] {
		fmt.Printf("%3.0f%% ", 100*c/total)
	}
	fmt.Println()

	// Attach an analytic cost model and schedule the same application on
	// the simulated Pentium cluster at paper scale.
	cost := reduction.CostModel{
		Name:       "histogram",
		Mix:        reduction.WorkMix{Flop: 0.3, Mem: 0.5, Branch: 0.2},
		OpsPerElem: float64(16 * 4),
		Iterations: 1,
		ROBytesPerNode: func(totalElems int64, c int) units.Bytes {
			return units.Bytes(8 * 16 * 20)
		},
		GlobalOps: func(totalElems int64, c int) float64 {
			return float64(4 * c * 16 * 20)
		},
		BroadcastBytes: units.KB,
	}
	grid, err := middleware.NewGrid(middleware.PentiumMyrinet())
	if err != nil {
		log.Fatal(err)
	}
	big := spec
	big.Name = "custom-points-big"
	big.TotalBytes = 2 * units.GB
	big.ChunkBytes = 2 * units.MB
	cfg := core.Config{
		Cluster:      "pentium-myrinet",
		DataNodes:    4,
		ComputeNodes: 16,
		Bandwidth:    100 * units.MBPerSec,
		DatasetBytes: big.TotalBytes,
	}
	sim, err := grid.Simulate(cost, big, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated at paper scale (%v on %v): T_exec %v\n",
		big.TotalBytes, cfg, sim.Makespan.Round(time.Millisecond))
	fmt.Printf("  breakdown: t_d=%v t_n=%v t_c=%v\n",
		sim.Profile.Tdisk.Round(time.Millisecond),
		sim.Profile.Tnetwork.Round(time.Millisecond),
		sim.Profile.Tcompute.Round(time.Millisecond))
}
