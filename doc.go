// Package freerideg is a reproduction of "A Performance Prediction
// Framework for Grid-Based Data Mining Applications" (Glimcher & Agrawal,
// IPPS 2007): the FREERIDE-G grid middleware for generalized-reduction
// data mining, a profile-based performance prediction framework, the five
// applications the paper evaluates, a discrete-event testbed that stands
// in for the paper's physical clusters, and an experiment harness that
// regenerates every figure of the evaluation.
//
// Start with DESIGN.md for the system inventory, README.md for usage, and
// EXPERIMENTS.md for paper-vs-measured results. The top-level benchmarks
// in bench_test.go regenerate each figure (go test -bench Fig -benchmem).
package freerideg
